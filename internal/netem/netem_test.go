package netem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func deliverCollector(times *[]float64, s *sim.Simulator) func(*Packet) {
	return func(p *Packet) { *times = append(*times, s.Now()) }
}

func TestLinkSerializationAndDelay(t *testing.T) {
	s := sim.New(1)
	// 12 Mbps → a 1500-byte packet serializes in 1 ms; delay 10 ms.
	l := NewLink(s, "l", LinkConfig{RateBps: 12e6, Delay: 0.010, QueueBytes: 1 << 20})
	var times []float64
	p := &Packet{Size: 1500}
	SendOver(p, []Hop{l}, deliverCollector(&times, s), nil)
	s.Run(1)
	if len(times) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(times))
	}
	want := 0.001 + 0.010
	if math.Abs(times[0]-want) > 1e-9 {
		t.Fatalf("delivery at %v, want %v", times[0], want)
	}
}

func TestLinkQueueingBackToBack(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "l", LinkConfig{RateBps: 12e6, Delay: 0, QueueBytes: 1 << 20})
	var times []float64
	for i := 0; i < 5; i++ {
		SendOver(&Packet{Size: 1500}, []Hop{l}, deliverCollector(&times, s), nil)
	}
	s.Run(1)
	if len(times) != 5 {
		t.Fatalf("delivered %d, want 5", len(times))
	}
	for i, tm := range times {
		want := 0.001 * float64(i+1)
		if math.Abs(tm-want) > 1e-9 {
			t.Fatalf("packet %d delivered at %v, want %v", i, tm, want)
		}
	}
}

func TestLinkTailDrop(t *testing.T) {
	s := sim.New(1)
	// Queue limit of 3000 bytes = 2 packets; one more is in service.
	l := NewLink(s, "l", LinkConfig{RateBps: 12e6, Delay: 0, QueueBytes: 3000})
	delivered, dropped := 0, 0
	for i := 0; i < 6; i++ {
		SendOver(&Packet{Size: 1500}, []Hop{l},
			func(*Packet) { delivered++ },
			func(_ *Packet, reason string) {
				if reason != "tail" {
					t.Errorf("drop reason %q, want tail", reason)
				}
				dropped++
			})
	}
	s.Run(1)
	// First packet enters service (leaving queue), 2 queue, rest drop.
	if delivered != 3 || dropped != 3 {
		t.Fatalf("delivered=%d dropped=%d, want 3/3", delivered, dropped)
	}
	st := l.Stats()
	if st.TailDrops != 3 || st.Delivered != 3 || st.Arrived != 6 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	s := sim.New(7)
	l := NewLink(s, "l", LinkConfig{RateBps: 1e9, Delay: 0, QueueBytes: 1 << 30, LossProb: 0.3})
	delivered, dropped := 0, 0
	const n = 5000
	for i := 0; i < n; i++ {
		SendOver(&Packet{Size: 1500}, []Hop{l},
			func(*Packet) { delivered++ },
			func(_ *Packet, reason string) { dropped++ })
	}
	s.Run(10)
	frac := float64(dropped) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("random-loss fraction %.3f, want ≈0.30", frac)
	}
}

func TestLinkRateChange(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "l", LinkConfig{RateBps: 12e6, Delay: 0, QueueBytes: 1 << 20})
	var times []float64
	SendOver(&Packet{Size: 1500}, []Hop{l}, deliverCollector(&times, s), nil)
	s.Run(0.0005) // mid-serialization
	l.SetRateBps(120e6)
	SendOver(&Packet{Size: 1500}, []Hop{l}, deliverCollector(&times, s), nil)
	s.Run(1)
	// First packet finishes at its old rate (1 ms), second at the new
	// (0.1 ms after).
	if math.Abs(times[0]-0.001) > 1e-9 {
		t.Fatalf("first delivery %v", times[0])
	}
	if math.Abs(times[1]-0.0011) > 1e-9 {
		t.Fatalf("second delivery %v, want 0.0011", times[1])
	}
}

func TestLinkZeroRateGuard(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "l", LinkConfig{RateBps: 1e6, Delay: 0})
	l.SetRateBps(0)
	if l.RateBps() <= 0 {
		t.Fatal("SetRateBps(0) should clamp to a positive crawl rate")
	}
}

func TestDelayHop(t *testing.T) {
	s := sim.New(1)
	d := &DelayHop{Sim: s, Delay: 0.025}
	var times []float64
	SendOver(&Packet{Size: 100}, []Hop{d}, deliverCollector(&times, s), nil)
	s.Run(1)
	if math.Abs(times[0]-0.025) > 1e-12 {
		t.Fatalf("delay hop delivered at %v", times[0])
	}
}

func TestMultiHopPath(t *testing.T) {
	s := sim.New(1)
	l1 := NewLink(s, "l1", LinkConfig{RateBps: 12e6, Delay: 0.010, QueueBytes: 1 << 20})
	l2 := NewLink(s, "l2", LinkConfig{RateBps: 12e6, Delay: 0.005, QueueBytes: 1 << 20})
	var times []float64
	SendOver(&Packet{Size: 1500}, []Hop{l1, l2}, deliverCollector(&times, s), nil)
	s.Run(1)
	want := 0.001 + 0.010 + 0.001 + 0.005
	if math.Abs(times[0]-want) > 1e-9 {
		t.Fatalf("two-hop delivery at %v, want %v", times[0], want)
	}
}

func TestDumbbellBaseRTT(t *testing.T) {
	s := sim.New(1)
	d := NewDumbbell(s, DumbbellConfig{RateBps: 100e6, BaseRTT: 0.030, QueueBytes: 1 << 20})
	p := d.FlowPath(0)
	if rtt := p.BaseRTT(); math.Abs(rtt-0.030) > 1e-12 {
		t.Fatalf("BaseRTT %v, want 0.030", rtt)
	}
	p2 := d.FlowPath(0.010)
	if rtt := p2.BaseRTT(); math.Abs(rtt-0.040) > 1e-12 {
		t.Fatalf("BaseRTT with extra delay %v, want 0.040", rtt)
	}
}

func TestBDPBytes(t *testing.T) {
	// 100 Mbps × 30 ms = 375000 bytes.
	if got := BDPBytes(100e6, 0.030); got != 375000 {
		t.Fatalf("BDPBytes = %d, want 375000", got)
	}
}

func TestMultiBottleneckPaths(t *testing.T) {
	s := sim.New(1)
	mb := NewMultiBottleneck(s, 100e6, 20e6, 0.030, 1<<20, 1<<20)
	if len(mb.PathSet1().Forward) != 1 {
		t.Fatal("set1 should cross one link")
	}
	if len(mb.PathSet2().Forward) != 2 {
		t.Fatal("set2 should cross two links")
	}
	var times []float64
	SendOver(&Packet{Size: 1500}, mb.PathSet2().Forward, deliverCollector(&times, s), nil)
	s.Run(1)
	if len(times) != 1 {
		t.Fatal("packet lost crossing both links")
	}
}

// Property: a FIFO link preserves order for same-size packets.
func TestLinkFIFOProperty(t *testing.T) {
	f := func(count uint8) bool {
		n := int(count%50) + 2
		s := sim.New(3)
		l := NewLink(s, "l", LinkConfig{RateBps: 12e6, Delay: 0.001, QueueBytes: 1 << 30})
		var order []int64
		for i := 0; i < n; i++ {
			SendOver(&Packet{Seq: int64(i), Size: 1500}, []Hop{l},
				func(p *Packet) { order = append(order, p.Seq) }, nil)
		}
		s.Run(100)
		if len(order) != n {
			return false
		}
		for i := range order {
			if order[i] != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossTrafficLoadsLink(t *testing.T) {
	s := sim.New(9)
	l := NewLink(s, "l", LinkConfig{RateBps: 100e6, Delay: 0.001, QueueBytes: 1 << 30})
	ct := &CrossTraffic{Sim: s, Link: l, MeanBps: 50e6, BurstMean: 4}
	ct.Start()
	s.Run(10)
	st := l.Stats()
	gotBps := float64(st.BytesOut) * 8 / 10
	if gotBps < 35e6 || gotBps > 65e6 {
		t.Fatalf("cross traffic delivered %.1f Mbps, want ≈50", gotBps/1e6)
	}
	ct.Stop()
	s.Run(10.1)
	before := l.Stats().Arrived
	s.Run(12)
	if l.Stats().Arrived-before > 70 {
		t.Fatalf("cross traffic kept flowing after Stop: %d new arrivals", l.Stats().Arrived-before)
	}
}

func TestQueueHighWaterMark(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "l", LinkConfig{RateBps: 12e6, Delay: 0, QueueBytes: 1 << 20})
	for i := 0; i < 10; i++ {
		SendOver(&Packet{Size: 1500}, []Hop{l}, func(*Packet) {}, nil)
	}
	s.Run(1)
	// 10 arrive instantly; 1 in service, 9 queued at peak.
	if l.MaxQueueBytes() != 9*1500 {
		t.Fatalf("MaxQueueBytes = %d, want %d", l.MaxQueueBytes(), 9*1500)
	}
	if l.QueueBytes() != 0 {
		t.Fatalf("queue not drained: %d", l.QueueBytes())
	}
}
