package netem

import (
	"math"
)

// QueueDiscipline lets the link delegate drop/admit decisions, implementing
// the "user-defined queuing policies" the paper's emulated link supports
// (§3.2). DropTail is the default; RED and CoDel are provided.
type QueueDiscipline interface {
	// Admit decides whether an arriving packet may enqueue given the
	// current queue occupancy in bytes and the configured limit.
	Admit(now float64, qBytes, limitBytes int, p *Packet) bool
	// OnDequeue observes a packet leaving the queue after sojourn seconds;
	// it returns true if the packet should be dropped at dequeue (CoDel
	// semantics). Droppers that only act at enqueue return false.
	OnDequeue(now float64, sojourn float64, p *Packet) bool
}

// Cloner is implemented by disciplines that carry mutable run state (RED's
// averaged queue, CoDel's drop schedule). NewLink clones such disciplines,
// so a discipline instance placed in a shared config — a runner.Scenario
// reused across runs, or a grid submitted to the batch engine — never
// leaks state between links or races between workers. Stateless
// disciplines (DropTail) need not implement it.
type Cloner interface {
	CloneDiscipline() QueueDiscipline
}

// DropTail admits while the buffer has room.
type DropTail struct{}

// Admit implements QueueDiscipline.
func (DropTail) Admit(now float64, qBytes, limitBytes int, p *Packet) bool {
	return qBytes+p.Size <= limitBytes
}

// OnDequeue implements QueueDiscipline.
func (DropTail) OnDequeue(float64, float64, *Packet) bool { return false }

// RED implements Random Early Detection: the drop probability ramps
// linearly from 0 at MinThresholdBytes to MaxProb at MaxThresholdBytes,
// computed over an EWMA of the queue occupancy.
type RED struct {
	MinThresholdBytes int
	MaxThresholdBytes int
	MaxProb           float64
	Weight            float64 // EWMA weight, typically 0.002

	avg float64
	// Rand must return uniform [0,1) — injected so drops derive from the
	// simulator's seeded RNG.
	Rand func() float64
}

// Admit implements QueueDiscipline.
func (r *RED) Admit(now float64, qBytes, limitBytes int, p *Packet) bool {
	if qBytes+p.Size > limitBytes {
		return false // hard limit still applies
	}
	w := r.Weight
	if w <= 0 {
		w = 0.002
	}
	r.avg = (1-w)*r.avg + w*float64(qBytes)
	switch {
	case r.avg < float64(r.MinThresholdBytes):
		return true
	case r.avg >= float64(r.MaxThresholdBytes):
		return false
	default:
		frac := (r.avg - float64(r.MinThresholdBytes)) /
			float64(r.MaxThresholdBytes-r.MinThresholdBytes)
		return r.Rand() >= frac*r.MaxProb
	}
}

// OnDequeue implements QueueDiscipline.
func (r *RED) OnDequeue(float64, float64, *Packet) bool { return false }

// CloneDiscipline implements Cloner: configuration is copied, the EWMA
// restarts at zero. An explicitly injected Rand is kept; a nil Rand lets
// NewLink wire in the owning simulator's seeded RNG.
func (r *RED) CloneDiscipline() QueueDiscipline {
	return &RED{
		MinThresholdBytes: r.MinThresholdBytes,
		MaxThresholdBytes: r.MaxThresholdBytes,
		MaxProb:           r.MaxProb,
		Weight:            r.Weight,
		Rand:              r.Rand,
	}
}

// CoDel implements the Controlled Delay AQM (Nichols & Jacobson): when the
// minimum sojourn time stays above Target for an Interval, packets are
// dropped at dequeue with the drop spacing shrinking as interval/sqrt(n).
type CoDel struct {
	Target   float64 // default 5 ms
	Interval float64 // default 100 ms

	firstAbove float64
	dropping   bool
	dropNext   float64
	count      int
}

// NewCoDel returns a CoDel instance with the standard 5 ms / 100 ms
// parameters.
func NewCoDel() *CoDel { return &CoDel{Target: 0.005, Interval: 0.100} }

// CloneDiscipline implements Cloner: configuration is copied, the drop
// state machine restarts idle.
func (c *CoDel) CloneDiscipline() QueueDiscipline {
	return &CoDel{Target: c.Target, Interval: c.Interval}
}

// Admit implements QueueDiscipline: CoDel never drops at enqueue beyond the
// hard limit.
func (c *CoDel) Admit(now float64, qBytes, limitBytes int, p *Packet) bool {
	return qBytes+p.Size <= limitBytes
}

// OnDequeue implements QueueDiscipline.
func (c *CoDel) OnDequeue(now float64, sojourn float64, p *Packet) bool {
	if sojourn < c.Target {
		c.firstAbove = 0
		if c.dropping {
			c.dropping = false
		}
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.Interval
		return false
	}
	if !c.dropping {
		if now >= c.firstAbove {
			c.dropping = true
			c.count = 1
			c.dropNext = now + c.Interval/math.Sqrt(float64(c.count))
			return true
		}
		return false
	}
	if now >= c.dropNext {
		c.count++
		c.dropNext = now + c.Interval/math.Sqrt(float64(c.count))
		return true
	}
	return false
}
