package netem

import (
	"testing"

	"repro/internal/sim"
)

func TestDropTailDiscipline(t *testing.T) {
	d := DropTail{}
	if !d.Admit(0, 0, 3000, &Packet{Size: 1500}) {
		t.Fatal("empty queue rejected")
	}
	if d.Admit(0, 2000, 3000, &Packet{Size: 1500}) {
		t.Fatal("overfull queue admitted")
	}
	if d.OnDequeue(0, 1.0, &Packet{}) {
		t.Fatal("droptail dropped at dequeue")
	}
}

func TestREDRampsDropProbability(t *testing.T) {
	red := &RED{
		MinThresholdBytes: 10000, MaxThresholdBytes: 30000,
		MaxProb: 1.0, Weight: 1, // weight 1 = instantaneous queue
		Rand: func() float64 { return 0.5 },
	}
	p := &Packet{Size: 1500}
	if !red.Admit(0, 5000, 1<<20, p) {
		t.Fatal("below min threshold must always admit")
	}
	// avg = 29000: frac = 0.95 > 0.5 → drop.
	if red.Admit(0, 29000, 1<<20, p) {
		t.Fatal("near max threshold should drop at rand 0.5")
	}
	// avg = 12000: frac = 0.1 < 0.5 → admit.
	if !red.Admit(0, 12000, 1<<20, p) {
		t.Fatal("just above min threshold should usually admit")
	}
	// Above max threshold: always drop.
	if red.Admit(0, 40000, 1<<20, p) {
		t.Fatal("above max threshold must drop")
	}
	// Hard limit still applies regardless of thresholds.
	if red.Admit(0, 100, 1000, p) {
		t.Fatal("hard buffer limit ignored")
	}
}

func TestCoDelDropsPersistentQueue(t *testing.T) {
	c := NewCoDel()
	p := &Packet{Size: 1500}
	// Sojourn below target: never drops.
	for i := 0; i < 100; i++ {
		if c.OnDequeue(float64(i)*0.01, 0.001, p) {
			t.Fatal("dropped below target")
		}
	}
	// Sojourn persistently above target: first drop after one Interval.
	dropped := 0
	for i := 0; i < 100; i++ {
		if c.OnDequeue(1+float64(i)*0.01, 0.02, p) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("CoDel never dropped a persistently-late queue")
	}
	// Sojourn recovering: dropping stops.
	if c.OnDequeue(10, 0.001, p) {
		t.Fatal("dropped after queue recovered")
	}
}

func TestCoDelDropSpacingShrinks(t *testing.T) {
	c := NewCoDel()
	p := &Packet{Size: 1500}
	var dropTimes []float64
	for i := 0; i < 20000; i++ {
		now := float64(i) * 0.001
		if c.OnDequeue(now, 0.02, p) {
			dropTimes = append(dropTimes, now)
		}
	}
	if len(dropTimes) < 4 {
		t.Fatalf("only %d drops", len(dropTimes))
	}
	gap1 := dropTimes[1] - dropTimes[0]
	gapLast := dropTimes[len(dropTimes)-1] - dropTimes[len(dropTimes)-2]
	if gapLast >= gap1 {
		t.Fatalf("drop spacing did not shrink: first %.3f last %.3f", gap1, gapLast)
	}
}

func TestLinkWithCoDelSignalsOverload(t *testing.T) {
	// Against an unresponsive overload CoDel cannot bound the queue (that
	// needs a responsive sender; see the runner-level test), but it must
	// produce escalating dequeue drops as the congestion signal.
	s := sim.New(5)
	l := NewLink(s, "l", LinkConfig{
		RateBps: 10e6, Delay: 0.001, QueueBytes: 1 << 20, Discipline: NewCoDel(),
	})
	stop := s.Ticker(0, 0.0006, func() { // 2x capacity
		SendOver(&Packet{Size: 1500}, []Hop{l}, func(*Packet) {}, func(*Packet, string) {})
	})
	s.At(2.5, func() { stop() })
	s.Run(1)
	early := l.Stats().AQMDrops
	s.Run(2.5)
	late := l.Stats().AQMDrops - early
	if late == 0 {
		t.Fatal("CoDel on an overloaded link never dropped")
	}
	if late <= early {
		t.Fatalf("CoDel drop rate did not escalate: %d then %d", early, late)
	}
}

func TestLinkWithREDUsesSimRNG(t *testing.T) {
	s := sim.New(7)
	red := &RED{MinThresholdBytes: 1500, MaxThresholdBytes: 15000, MaxProb: 0.5, Weight: 1}
	l := NewLink(s, "l", LinkConfig{RateBps: 10e6, Delay: 0, QueueBytes: 1 << 20, Discipline: red})
	clone, ok := l.Config().Discipline.(*RED)
	if !ok || clone == red {
		t.Fatal("NewLink did not clone the RED template into a private instance")
	}
	if clone.Rand == nil {
		t.Fatal("NewLink did not wire the simulator RNG into its RED clone")
	}
	if red.Rand != nil {
		t.Fatal("NewLink mutated the caller's RED template")
	}
	dropped := 0
	for i := 0; i < 200; i++ {
		SendOver(&Packet{Size: 1500}, []Hop{l}, func(*Packet) {},
			func(*Packet, string) { dropped++ })
	}
	s.Run(1)
	if dropped == 0 {
		t.Fatal("RED never early-dropped under an instantaneous burst")
	}
}

// Regression (found by the check-package differential suite): a stateful
// discipline instance shared by two links must not share mutable state —
// before the Cloner mechanism, RED's EWMA and Rand and CoDel's drop
// schedule bled between links, between reruns of one Scenario, and raced
// between batch workers.
func TestStatefulDisciplinesClonedPerLink(t *testing.T) {
	s := sim.New(1)
	red := &RED{MinThresholdBytes: 1500, MaxThresholdBytes: 15000, MaxProb: 0.5, Weight: 1}
	l1 := NewLink(s, "a", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20, Discipline: red})
	l2 := NewLink(s, "b", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20, Discipline: red})
	if l1.Config().Discipline == l2.Config().Discipline {
		t.Fatal("two links share one RED instance")
	}
	cd := NewCoDel()
	cd.dropping = true // dirty template state must not leak into links
	l3 := NewLink(s, "c", LinkConfig{RateBps: 1e6, QueueBytes: 1 << 20, Discipline: cd})
	if got := l3.Config().Discipline.(*CoDel); got.dropping {
		t.Fatal("CoDel clone inherited the template's run state")
	}
}
