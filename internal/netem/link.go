package netem

import (
	"math"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// LinkConfig describes a rate-limited link with a droptail byte queue.
type LinkConfig struct {
	// RateBps is the link capacity in bits per second.
	RateBps float64
	// Delay is the one-way propagation delay in seconds.
	Delay float64
	// QueueBytes is the droptail buffer limit. Zero means effectively
	// unbounded (2^60 bytes).
	QueueBytes int
	// LossProb drops each arriving packet independently with this
	// probability, emulating non-congestive (random) loss.
	LossProb float64
	// Discipline selects the queueing policy (nil = DropTail). RED and
	// CoDel implement the paper's "user-defined queuing policies".
	Discipline QueueDiscipline
}

// LinkStats aggregates what happened on a link since creation.
type LinkStats struct {
	Arrived     int64
	Delivered   int64
	TailDrops   int64 // enqueue-side drops (buffer full or AQM early drop)
	AQMDrops    int64 // dequeue-side AQM drops (CoDel)
	RandomDrops int64
	BytesOut    int64
}

// LinkMetrics is the telemetry bundle links report into: enqueues, drops
// broken down by cause, and deliveries. One bundle is typically shared by
// every link of a scenario (the counters are atomic); the zero value and a
// nil *LinkMetrics are valid no-op sinks.
type LinkMetrics struct {
	Enqueued    *telemetry.Counter
	TailDrops   *telemetry.Counter
	AQMDrops    *telemetry.Counter
	RandomDrops *telemetry.Counter
	Delivered   *telemetry.Counter
}

// NewLinkMetrics registers the link counters on reg and returns the bundle
// to assign to Link.Metrics. A nil reg yields a no-op bundle.
func NewLinkMetrics(reg *telemetry.Registry) *LinkMetrics {
	return &LinkMetrics{
		Enqueued:    reg.Counter("netem_enqueued_total", "packets admitted to a link queue"),
		TailDrops:   reg.Counter("netem_drops_tail_total", "enqueue-side drops (buffer full or AQM early drop)"),
		AQMDrops:    reg.Counter("netem_drops_aqm_total", "dequeue-side AQM drops (CoDel)"),
		RandomDrops: reg.Counter("netem_drops_random_total", "stochastic (non-congestive) drops"),
		Delivered:   reg.Counter("netem_delivered_total", "packets fully serialized onto the wire"),
	}
}

// Link is a store-and-forward hop: packets are serialized at the link rate,
// wait behind the queue, then experience propagation delay. The rate can be
// changed at runtime (trace playback).
type Link struct {
	Sim  *sim.Simulator
	Name string

	// Metrics, when set, receives per-packet telemetry. Leave nil for an
	// uninstrumented link; the counters are nil-safe either way.
	Metrics *LinkMetrics

	cfg     LinkConfig
	rateBps float64

	// queue is a ring buffer (power-of-two capacity): qHead indexes the
	// oldest waiting packet, qLen counts them. A plain append+reslice queue
	// loses front capacity on every dequeue, so fan-in bursts (hundreds of
	// flows dumping into one buffer) forced periodic reallocation and kept
	// dead *Packet pointers reachable in the abandoned arrays; the ring
	// reaches steady state with zero allocation and zeroes each slot on
	// dequeue.
	queue    []queued
	qHead    int
	qLen     int
	qBytes   int
	busy     bool
	stats    LinkStats
	maxQSeen int

	// OnQueueSample, when set, is invoked at each dequeue with the current
	// queue occupancy in bytes (for experiments that watch the bottleneck).
	OnQueueSample func(t float64, qBytes int)
}

type queued struct {
	p        *Packet
	next     func(*Packet)
	enqueued float64
}

// NewLink builds a link driven by s.
func NewLink(s *sim.Simulator, name string, cfg LinkConfig) *Link {
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 1 << 60
	}
	if cfg.Discipline == nil {
		cfg.Discipline = DropTail{}
	}
	// Stateful disciplines are cloned so this link owns private state: the
	// caller's instance may sit in a Scenario that is rerun or fanned
	// across batch workers, and sharing the mutable EWMA/drop schedule
	// would bleed state across runs (and race across workers).
	if cl, ok := cfg.Discipline.(Cloner); ok {
		cfg.Discipline = cl.CloneDiscipline()
	}
	if red, ok := cfg.Discipline.(*RED); ok && red.Rand == nil {
		red.Rand = s.Rand().Float64
	}
	return &Link{Sim: s, Name: name, cfg: cfg, rateBps: cfg.RateBps}
}

// SetRateBps changes the service rate; in-flight serialization finishes at
// the old rate, subsequent packets use the new one.
func (l *Link) SetRateBps(r float64) {
	if r <= 0 {
		r = 1 // a dead-stopped link would stall the event loop; crawl instead
	}
	l.rateBps = r
}

// RateBps returns the current service rate in bits per second.
func (l *Link) RateBps() float64 { return l.rateBps }

// Config returns the link's static configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Stats returns a copy of the accumulated counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueBytes returns current queue occupancy (excluding the packet in
// service).
func (l *Link) QueueBytes() int { return l.qBytes }

// QueueLen returns the number of packets waiting in the queue (excluding
// the packet in service).
func (l *Link) QueueLen() int { return l.qLen }

// pushQueue appends item to the ring, growing it when full.
func (l *Link) pushQueue(item queued) {
	if l.qLen == len(l.queue) {
		newCap := len(l.queue) * 2
		if newCap == 0 {
			newCap = 16
		}
		grown := make([]queued, newCap)
		for i := 0; i < l.qLen; i++ {
			grown[i] = l.queue[(l.qHead+i)&(len(l.queue)-1)]
		}
		l.queue, l.qHead = grown, 0
	}
	l.queue[(l.qHead+l.qLen)&(len(l.queue)-1)] = item
	l.qLen++
}

// popQueue removes and returns the oldest waiting packet, zeroing its slot
// so the ring retains no packet or callback pointers after the burst
// drains.
func (l *Link) popQueue() queued {
	item := l.queue[l.qHead]
	l.queue[l.qHead] = queued{}
	l.qHead = (l.qHead + 1) & (len(l.queue) - 1)
	l.qLen--
	return item
}

// InService reports whether a packet is currently being serialized onto the
// wire. Together with QueueLen and Stats it closes the link's conservation
// identity: Arrived == Delivered + drops + QueueLen + InService.
func (l *Link) InService() bool { return l.busy }

// MaxQueueBytes returns the high-water mark of queue occupancy.
func (l *Link) MaxQueueBytes() int { return l.maxQSeen }

// Send implements Hop.
func (l *Link) Send(p *Packet, next func(*Packet)) {
	l.stats.Arrived++
	if l.cfg.LossProb > 0 && l.Sim.Rand().Float64() < l.cfg.LossProb {
		l.stats.RandomDrops++
		if m := l.Metrics; m != nil {
			m.RandomDrops.Inc()
		}
		p.Drop("random")
		return
	}
	if !l.cfg.Discipline.Admit(l.Sim.Now(), l.qBytes, l.cfg.QueueBytes, p) {
		l.stats.TailDrops++
		if m := l.Metrics; m != nil {
			m.TailDrops.Inc()
		}
		p.Drop("tail")
		return
	}
	if m := l.Metrics; m != nil {
		m.Enqueued.Inc()
	}
	l.pushQueue(queued{p, next, l.Sim.Now()})
	l.qBytes += p.Size
	if l.qBytes > l.maxQSeen {
		l.maxQSeen = l.qBytes
	}
	if !l.busy {
		l.serveNext()
	}
}

func (l *Link) serveNext() {
	if l.qLen == 0 {
		l.busy = false
		return
	}
	l.busy = true
	item := l.popQueue()
	l.qBytes -= item.p.Size
	if l.OnQueueSample != nil {
		l.OnQueueSample(l.Sim.Now(), l.qBytes)
	}
	if l.cfg.Discipline.OnDequeue(l.Sim.Now(), l.Sim.Now()-item.enqueued, item.p) {
		l.stats.AQMDrops++
		if m := l.Metrics; m != nil {
			m.AQMDrops.Inc()
		}
		item.p.Drop("aqm")
		l.serveNext()
		return
	}
	txTime := float64(item.p.Size*8) / l.rateBps
	if math.IsInf(txTime, 0) || math.IsNaN(txTime) {
		txTime = 0
	}
	l.Sim.After(txTime, func() {
		l.stats.Delivered++
		l.stats.BytesOut += int64(item.p.Size)
		if m := l.Metrics; m != nil {
			m.Delivered.Inc()
		}
		// Propagation happens off the serialization path: the link is free
		// to serve the next packet while this one flies.
		l.Sim.After(l.cfg.Delay, func() { item.next(item.p) })
		l.serveNext()
	})
}

// DelayHop adds pure propagation delay with no queuing or rate limit. Used
// for per-flow extra delay (RTT heterogeneity) and reverse paths.
type DelayHop struct {
	Sim   *sim.Simulator
	Delay float64
}

// Send implements Hop.
func (d *DelayHop) Send(p *Packet, next func(*Packet)) {
	d.Sim.After(d.Delay, func() { next(p) })
}

// JitterHop adds random uniform delay in [0, Max), emulating scheduling
// noise on wide-area paths.
type JitterHop struct {
	Sim *sim.Simulator
	Max float64
}

// Send implements Hop.
func (j *JitterHop) Send(p *Packet, next func(*Packet)) {
	j.Sim.After(j.Sim.Rand().Float64()*j.Max, func() { next(p) })
}
