package netem

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestParkingLotPaths(t *testing.T) {
	s := sim.New(1)
	pl := NewParkingLot(s, 3, 100e6, 0.030, 1<<20)
	long := pl.LongPath()
	if len(long.Forward) != 3 {
		t.Fatalf("long path crosses %d links", len(long.Forward))
	}
	// Every class shares the same base RTT.
	if math.Abs(long.BaseRTT()-0.030) > 1e-9 {
		t.Fatalf("long path RTT %v", long.BaseRTT())
	}
	for i := 0; i < 3; i++ {
		sp := pl.ShortPath(i)
		if math.Abs(sp.BaseRTT()-0.030) > 1e-9 {
			t.Fatalf("short path %d RTT %v, want equal to long", i, sp.BaseRTT())
		}
	}
}

func TestParkingLotDelivery(t *testing.T) {
	s := sim.New(1)
	pl := NewParkingLot(s, 2, 100e6, 0.020, 1<<20)
	delivered := 0
	SendOver(&Packet{Size: 1500}, pl.LongPath().Forward, func(*Packet) { delivered++ }, nil)
	SendOver(&Packet{Size: 1500}, pl.ShortPath(1).Forward, func(*Packet) { delivered++ }, nil)
	s.Run(1)
	if delivered != 2 {
		t.Fatalf("delivered %d", delivered)
	}
}

func TestParkingLotBoundsChecked(t *testing.T) {
	s := sim.New(1)
	pl := NewParkingLot(s, 2, 1e6, 0.020, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range hop")
		}
	}()
	pl.ShortPath(5)
}

func TestOutage(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "l", LinkConfig{RateBps: 10e6, Delay: 0.001, QueueBytes: 1 << 20})
	Outage(s, l, 1.0, 0.5)
	s.Run(0.9)
	if l.RateBps() != 10e6 {
		t.Fatalf("pre-outage rate %v", l.RateBps())
	}
	s.Run(1.2)
	if l.RateBps() > 1 {
		t.Fatalf("rate during outage %v", l.RateBps())
	}
	s.Run(2)
	if l.RateBps() != 10e6 {
		t.Fatalf("post-outage rate %v", l.RateBps())
	}
}
