package netem

import (
	"repro/internal/sim"
)

// CrossTraffic injects background packets into a link to emulate
// uncontrolled competing traffic on wide-area Internet paths (used by the
// Fig. 15 "real-world" substitution). Arrivals are Poisson; bursts are
// geometric, so the offered load is bursty the way mixed Internet traffic
// is, without modelling each background flow.
type CrossTraffic struct {
	Sim       *sim.Simulator
	Link      *Link
	MeanBps   float64 // average offered load in bits/sec
	PktSize   int
	BurstMean float64 // mean packets per burst (geometric)

	stopped bool
	hops    []Hop // reused across injected packets
}

// Start begins injection. Packets are fire-and-forget: delivered ones
// vanish, drops are invisible to the foreground flows except through queue
// occupancy.
func (c *CrossTraffic) Start() {
	if c.PktSize <= 0 {
		c.PktSize = 1500
	}
	if c.BurstMean < 1 {
		c.BurstMean = 1
	}
	c.hops = []Hop{c.Link}
	c.scheduleNext()
}

// Stop halts injection after the next scheduled burst check.
func (c *CrossTraffic) Stop() { c.stopped = true }

func (c *CrossTraffic) scheduleNext() {
	if c.stopped || c.MeanBps <= 0 {
		return
	}
	// Mean bits per burst = PktSize*8*BurstMean; burst rate to hit MeanBps:
	burstsPerSec := c.MeanBps / (float64(c.PktSize*8) * c.BurstMean)
	gap := c.Sim.Rand().ExpFloat64() / burstsPerSec
	c.Sim.After(gap, func() {
		if c.stopped {
			return
		}
		n := 1
		for c.Sim.Rand().Float64() < 1-1/c.BurstMean {
			n++
			if n > 64 {
				break
			}
		}
		for i := 0; i < n; i++ {
			p := AcquirePacket()
			p.FlowID, p.Size, p.SentAt = -1, c.PktSize, c.Sim.Now()
			SendOver(p, c.hops, func(*Packet) {}, func(*Packet, string) {})
		}
		c.scheduleNext()
	})
}
