package netem

import (
	"fmt"

	"repro/internal/sim"
)

// ParkingLot generalizes the Fig. 11 topology to k links in series: one
// "long" flow class crosses every link while k "short" classes each cross a
// single link. It is the canonical stress test for max-min fairness of a CC
// scheme (the long flow should receive the max-min share of the tightest
// link, not be punished once per hop).
type ParkingLot struct {
	Sim   *sim.Simulator
	Links []*Link
	rtt   float64
}

// NewParkingLot builds k identical links in series, splitting the base RTT
// propagation across them.
func NewParkingLot(s *sim.Simulator, k int, rateBps, baseRTT float64, queueBytes int) *ParkingLot {
	if k < 1 {
		panic("netem: parking lot needs at least one link")
	}
	pl := &ParkingLot{Sim: s, rtt: baseRTT}
	for i := 0; i < k; i++ {
		pl.Links = append(pl.Links, NewLink(s, fmt.Sprintf("hop%d", i), LinkConfig{
			RateBps: rateBps, Delay: baseRTT / 2 / float64(k), QueueBytes: queueBytes,
		}))
	}
	return pl
}

// LongPath crosses every link.
func (pl *ParkingLot) LongPath() *Path {
	fwd := make([]Hop, len(pl.Links))
	for i, l := range pl.Links {
		fwd[i] = l
	}
	return &Path{
		Forward: fwd,
		Reverse: []Hop{&DelayHop{Sim: pl.Sim, Delay: pl.rtt / 2}},
	}
}

// ShortPath crosses only link i, padding propagation so every class shares
// the same base RTT (isolating the multi-hop effect from RTT bias).
func (pl *ParkingLot) ShortPath(i int) *Path {
	if i < 0 || i >= len(pl.Links) {
		panic(fmt.Sprintf("netem: parking lot hop %d of %d", i, len(pl.Links)))
	}
	pad := pl.rtt/2 - pl.Links[i].cfg.Delay
	fwd := []Hop{}
	if pad > 0 {
		fwd = append(fwd, &DelayHop{Sim: pl.Sim, Delay: pad})
	}
	fwd = append(fwd, pl.Links[i])
	return &Path{
		Forward: fwd,
		Reverse: []Hop{&DelayHop{Sim: pl.Sim, Delay: pl.rtt / 2}},
	}
}

// Outage schedules a capacity blackout on link between start and start+dur:
// the rate collapses to a crawl and recovers to the prior value. It
// emulates link flaps and deep wireless fades.
func Outage(s *sim.Simulator, link *Link, start, dur float64) {
	var saved float64
	s.At(start, func() {
		saved = link.RateBps()
		link.SetRateBps(1) // crawl, not zero: keeps the event loop live
	})
	s.At(start+dur, func() {
		link.SetRateBps(saved)
	})
}
