// Package netem emulates network paths at packet granularity: rate-limited
// links with droptail byte queues, propagation delay, stochastic loss,
// trace-driven variable capacity and multi-hop topologies. It plays the role
// Mahimahi and pantheon-tunnel play in the paper's testbed.
package netem

// Packet is the unit of transmission. The transport layer owns the payload
// semantics (sequence numbers, ACK flags); netem only moves packets along a
// sequence of hops, delaying and dropping them.
type Packet struct {
	FlowID  int
	Seq     int64
	Size    int // bytes on the wire, including headers
	Ack     bool
	SentAt  float64 // transport timestamp of the data packet this traces back to
	Retrans bool

	// AckSeq and AckInfo carry receiver state back to the sender; opaque to
	// netem.
	AckSeq  int64
	AckInfo any

	hops    []Hop
	hopIdx  int
	deliver func(*Packet)
	onDrop  func(*Packet, string)
}

// Hop is one element of a path: anything that can accept a packet and
// eventually hand it to next (or drop it).
type Hop interface {
	Send(p *Packet, next func(*Packet))
}

// SendOver launches p across hops; deliver runs when the last hop hands the
// packet over, onDrop (optional) when any hop drops it, with a reason string.
func SendOver(p *Packet, hops []Hop, deliver func(*Packet), onDrop func(*Packet, string)) {
	p.hops = hops
	p.hopIdx = 0
	p.deliver = deliver
	p.onDrop = onDrop
	p.advance()
}

func (p *Packet) advance() {
	if p.hopIdx >= len(p.hops) {
		p.deliver(p)
		return
	}
	h := p.hops[p.hopIdx]
	p.hopIdx++
	h.Send(p, func(q *Packet) { q.advance() })
}

// Drop terminates the packet's journey. Hops call this instead of next.
func (p *Packet) Drop(reason string) {
	if p.onDrop != nil {
		p.onDrop(p, reason)
	}
}
