// Package netem emulates network paths at packet granularity: rate-limited
// links with droptail byte queues, propagation delay, stochastic loss,
// trace-driven variable capacity and multi-hop topologies. It plays the role
// Mahimahi and pantheon-tunnel play in the paper's testbed.
package netem

import (
	"sync"
	"sync/atomic"
)

// Packet is the unit of transmission. The transport layer owns the payload
// semantics (sequence numbers, ACK flags); netem only moves packets along a
// sequence of hops, delaying and dropping them.
//
// Packets are pool-recycled once their journey ends: after the deliver or
// drop callback returns, the packet is reset and reused. Callbacks must
// therefore copy out any fields they need rather than retaining the pointer.
type Packet struct {
	FlowID  int
	Seq     int64
	Size    int // bytes on the wire, including headers
	Ack     bool
	SentAt  float64 // transport timestamp of the data packet this traces back to
	Retrans bool

	// AckSeq and AckInfo carry receiver state back to the sender; opaque to
	// netem.
	AckSeq  int64
	AckInfo any

	hops    []Hop
	hopIdx  int
	deliver func(*Packet)
	onDrop  func(*Packet, string)
}

// Hop is one element of a path: anything that can accept a packet and
// eventually hand it to next (or drop it).
type Hop interface {
	Send(p *Packet, next func(*Packet))
}

var packetPool = sync.Pool{New: func() any { poolAllocs.Add(1); return new(Packet) }}

// poolAllocs counts packets the pool had to allocate because no recycled
// one was available. The pool itself is process-wide (sync.Pool), so its
// recycling statistic is too; it is the only always-on counter in the
// package and sits on the rare miss path, not the per-packet one. Per-run
// registries import it lazily via Registry.GaugeFunc — see
// runner.InstrumentProcess.
var poolAllocs atomic.Int64

// PacketPoolAllocs returns how many packets have been heap-allocated since
// process start. Compare against the transport's packets-sent counters to
// judge recycling effectiveness: a healthy steady state allocates a few
// hundred packets (the in-flight high-water mark) and recycles everything
// after.
func PacketPoolAllocs() int64 { return poolAllocs.Load() }

// AcquirePacket returns a zeroed packet, recycled from the pool when
// possible. Packets handed to SendOver are released back automatically when
// they are delivered or dropped; directly-constructed packets also end up in
// the pool, which is harmless.
func AcquirePacket() *Packet { return packetPool.Get().(*Packet) }

func releasePacket(p *Packet) {
	*p = Packet{}
	packetPool.Put(p)
}

// SendOver launches p across hops; deliver runs when the last hop hands the
// packet over, onDrop (optional) when any hop drops it, with a reason string.
func SendOver(p *Packet, hops []Hop, deliver func(*Packet), onDrop func(*Packet, string)) {
	p.hops = hops
	p.hopIdx = 0
	p.deliver = deliver
	p.onDrop = onDrop
	p.advance()
}

func (p *Packet) advance() {
	if p.hopIdx >= len(p.hops) {
		p.deliver(p)
		releasePacket(p)
		return
	}
	h := p.hops[p.hopIdx]
	p.hopIdx++
	h.Send(p, func(q *Packet) { q.advance() })
}

// Drop terminates the packet's journey and recycles the packet. Hops call
// this instead of next and must not touch the packet afterwards.
func (p *Packet) Drop(reason string) {
	if p.onDrop != nil {
		p.onDrop(p, reason)
	}
	releasePacket(p)
}
