package netem

import (
	"testing"

	"repro/internal/sim"
)

// TestPacketPoolRecyclesUnderBurst audits the pool under a fan-in burst:
// hundreds of packets dumped into one link at once must come back to the
// pool as they drain, so a second identical burst in the same process
// needs (almost) no new heap packets. The pre-fix queue kept dead *Packet
// pointers reachable in abandoned backing arrays, which made recycling
// ineffective exactly under burst load.
func TestPacketPoolRecyclesUnderBurst(t *testing.T) {
	burst := func() {
		s := sim.New(9)
		l := NewLink(s, "agg", LinkConfig{RateBps: 1e9, Delay: 0.0001, QueueBytes: 1 << 30})
		hops := []Hop{l}
		for i := 0; i < 800; i++ {
			p := AcquirePacket()
			p.Size = 1500
			SendOver(p, hops, func(*Packet) {}, nil)
		}
		s.Run(1)
	}

	burst() // warm: populates the pool with up to 800 recycled packets
	before := PacketPoolAllocs()
	burst() // identical burst: should be served from the pool
	fresh := PacketPoolAllocs() - before

	// A GC between the bursts may legally shrink the pool, so demand "mostly
	// recycled" rather than zero: under a tenth of the burst size.
	if fresh > 80 {
		t.Fatalf("second burst heap-allocated %d of 800 packets — pool recycling is broken under bursts", fresh)
	}
}
