package netem

import (
	"repro/internal/sim"
)

// Path bundles the forward hops a flow's data packets traverse and the
// reverse hops its ACKs take back. The usual single-bottleneck scenario is
// forward = [extraDelay?, bottleneck], reverse = [delay(total return)].
type Path struct {
	Forward []Hop
	Reverse []Hop
}

// BaseRTT computes the zero-queue round-trip time of the path by summing
// static delays; links contribute propagation delay only (serialization of a
// single packet is counted separately by callers that care).
func (p *Path) BaseRTT() float64 {
	var rtt float64
	for _, hops := range [][]Hop{p.Forward, p.Reverse} {
		for _, h := range hops {
			switch v := h.(type) {
			case *Link:
				rtt += v.cfg.Delay
			case *DelayHop:
				rtt += v.Delay
			}
		}
	}
	return rtt
}

// DumbbellConfig describes the canonical single-bottleneck experiment
// topology: n senders share one bottleneck link; each flow may have extra
// one-way delay to emulate heterogeneous RTTs.
type DumbbellConfig struct {
	RateBps    float64
	BaseRTT    float64 // total two-way propagation when ExtraDelay is zero
	QueueBytes int
	LossProb   float64
	Discipline QueueDiscipline // nil = droptail
}

// Dumbbell is the shared-bottleneck topology used by most experiments.
type Dumbbell struct {
	Sim        *sim.Simulator
	Bottleneck *Link
	cfg        DumbbellConfig
}

// NewDumbbell creates the topology. The bottleneck link carries half of
// BaseRTT as forward propagation; the reverse direction is a pure delay hop
// with the other half (ACKs are small and assumed uncongested, as in the
// paper's tunnel setup).
func NewDumbbell(s *sim.Simulator, cfg DumbbellConfig) *Dumbbell {
	link := NewLink(s, "bottleneck", LinkConfig{
		RateBps:    cfg.RateBps,
		Delay:      cfg.BaseRTT / 2,
		QueueBytes: cfg.QueueBytes,
		LossProb:   cfg.LossProb,
		Discipline: cfg.Discipline,
	})
	return &Dumbbell{Sim: s, Bottleneck: link, cfg: cfg}
}

// FlowPath returns the path for one flow with extraDelay seconds added
// one-way (so the flow's base RTT is cfg.BaseRTT + 2*extraDelay... no:
// extraDelay is added once on forward and once on reverse, i.e. RTT grows by
// 2*extraDelay when both are set). For paper experiments we add the extra
// delay on the forward side only, growing the RTT by extraDelay.
func (d *Dumbbell) FlowPath(extraDelay float64) *Path {
	fwd := []Hop{}
	if extraDelay > 0 {
		fwd = append(fwd, &DelayHop{Sim: d.Sim, Delay: extraDelay})
	}
	fwd = append(fwd, d.Bottleneck)
	rev := []Hop{&DelayHop{Sim: d.Sim, Delay: d.cfg.BaseRTT / 2}}
	return &Path{Forward: fwd, Reverse: rev}
}

// BDPBytes returns the bandwidth-delay product of the dumbbell for a given
// RTT in seconds.
func BDPBytes(rateBps, rtt float64) int {
	return int(rateBps / 8 * rtt)
}

// MultiBottleneck reproduces the Fig. 11a topology: flow set 1 traverses
// only Link1; flow set 2 traverses Link1 then Link2.
type MultiBottleneck struct {
	Sim   *sim.Simulator
	Link1 *Link
	Link2 *Link
	rtt   float64
}

// NewMultiBottleneck builds the two-link topology with the paper's
// parameters structure: both links share the same base RTT contribution.
func NewMultiBottleneck(s *sim.Simulator, rate1, rate2, baseRTT float64, q1, q2 int) *MultiBottleneck {
	return &MultiBottleneck{
		Sim:   s,
		Link1: NewLink(s, "link1", LinkConfig{RateBps: rate1, Delay: baseRTT / 2, QueueBytes: q1}),
		Link2: NewLink(s, "link2", LinkConfig{RateBps: rate2, Delay: 0, QueueBytes: q2}),
		rtt:   baseRTT,
	}
}

// PathSet1 is the path for flows crossing only Link1.
func (m *MultiBottleneck) PathSet1() *Path {
	return &Path{
		Forward: []Hop{m.Link1},
		Reverse: []Hop{&DelayHop{Sim: m.Sim, Delay: m.rtt / 2}},
	}
}

// PathSet2 is the path for flows crossing Link1 then Link2.
func (m *MultiBottleneck) PathSet2() *Path {
	return &Path{
		Forward: []Hop{m.Link1, m.Link2},
		Reverse: []Hop{&DelayHop{Sim: m.Sim, Delay: m.rtt / 2}},
	}
}
