// Command astraea-train runs the offline multi-agent training pipeline
// (§3.4) and writes the learned actor as JSON weights loadable by
// core.LoadPolicy. It also supports supervised distillation of the
// reference policy, which is how the repository's default deployable neural
// model is produced quickly.
//
// Examples:
//
//	astraea-train -mode rl -episodes 50 -out actor.json
//	astraea-train -mode distill -out distilled.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/env"
)

func main() {
	mode := flag.String("mode", "distill", "rl (multi-agent TD3) or distill (supervised imitation)")
	episodes := flag.Int("episodes", 20, "training episodes (rl mode)")
	workers := flag.Int("workers", 4, "parallel environment instances (rl mode; paper uses 4)")
	samples := flag.Int("samples", 20000, "training samples (distill mode)")
	epochs := flag.Int("epochs", 30, "epochs (distill mode)")
	out := flag.String("out", "actor.json", "output weight file")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := core.DefaultConfig()
	switch *mode {
	case "rl":
		learner := env.NewParallelLearner(cfg, env.DefaultTrainingDistribution(), *seed, *workers)
		done := 0
		for done < *episodes {
			batch := *workers
			if done+batch > *episodes {
				batch = *episodes - done
			}
			learner.Train(batch)
			done += batch
			last := learner.RewardHistory[len(learner.RewardHistory)-1]
			fmt.Printf("episodes %3d/%d: reward=%+.5f criticLoss=%.5f replay=%d\n",
				done, *episodes, last, learner.Trainer.LastCriticLoss, learner.Replay.Len())
		}
		if err := core.SavePolicy(*out, learner.Trainer.Actor); err != nil {
			fmt.Fprintln(os.Stderr, "astraea-train:", err)
			os.Exit(1)
		}
	case "distill":
		opts := core.DefaultDistillOptions()
		opts.Samples = *samples
		opts.Epochs = *epochs
		opts.Seed = *seed
		net, loss := core.DistillPolicy(cfg, opts)
		fmt.Printf("distilled reference policy: imitation MSE = %.6f\n", loss)
		if err := core.SavePolicy(*out, net); err != nil {
			fmt.Fprintln(os.Stderr, "astraea-train:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "astraea-train: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
