// Command astraea-train runs the offline multi-agent training pipeline
// (§3.4) and writes the learned actor as JSON weights loadable by
// core.LoadPolicy. It also supports supervised distillation of the
// reference policy, which is how the repository's default deployable neural
// model is produced quickly.
//
// Examples:
//
//	astraea-train -mode rl -episodes 50 -out actor.json
//	astraea-train -mode distill -out distilled.json
//	astraea-train -mode rl -episodes 500 -pprof 127.0.0.1:6060 -telemetry train.prom
//	astraea-train -mode rl -episodes 5000 -checkpoint train.ckpt -checkpoint-every 25
//	astraea-train -mode rl -episodes 5000 -resume train.ckpt -checkpoint train.ckpt
//
// -telemetry writes a metrics snapshot (Prometheus text, or JSON for a
// .json path) at exit; -pprof serves net/http/pprof and a live /metrics
// endpoint, which is how long training runs are watched for convergence
// (rl_critic_loss, env_episode_reward) and overhead.
//
// -checkpoint writes a crash-safe snapshot of the complete training state
// (networks, Adam moments, replay buffer, RNG) every -checkpoint-every
// episodes; -resume restores one and continues toward -episodes total.
// Checkpoints are written atomically, so a crash — even kill -9 — between
// or during writes never leaves a corrupt file at the configured path.
// Resumed training is bitwise-deterministic, which requires the serial
// training loop: -checkpoint/-resume run one environment instance
// regardless of -workers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

func main() {
	mode := flag.String("mode", "distill", "rl (multi-agent TD3) or distill (supervised imitation)")
	episodes := flag.Int("episodes", 20, "training episodes (rl mode)")
	workers := flag.Int("workers", 4, "parallel environment instances (rl mode; paper uses 4)")
	samples := flag.Int("samples", 20000, "training samples (distill mode)")
	epochs := flag.Int("epochs", 30, "epochs (distill mode)")
	out := flag.String("out", "actor.json", "output weight file")
	seed := flag.Int64("seed", 1, "random seed")
	reward := flag.String("reward", "", "reward strategy: paper (default), aurora, maxmin, alpha[:a] (e.g. alpha:2)")
	checkpoint := flag.String("checkpoint", "", "write crash-safe training checkpoints to this path (rl mode; serial loop)")
	checkpointEvery := flag.Int("checkpoint-every", 25, "episodes between checkpoint writes when -checkpoint is set")
	checkpointKeep := flag.Int("checkpoint-keep", 0,
		"rotate episode-numbered checkpoint copies (<path>.<episodes>), keeping the newest N plus the last promoted one (0 = single file, no series)")
	resume := flag.String("resume", "", "resume rl training from this checkpoint and continue toward -episodes total")
	telemetryOut := flag.String("telemetry", "", "write a telemetry snapshot to this path at exit (.json = JSON, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and live /metrics on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	var reg *telemetry.Registry
	if *telemetryOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		runner.InstrumentProcess(reg)
	}
	if *pprofAddr != "" {
		bound, stop, err := telemetry.Serve(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "astraea-train: pprof:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "astraea-train: serving pprof and /metrics on http://%s\n", bound)
	}
	writeTelemetry := func() {
		if *telemetryOut == "" {
			return
		}
		if err := telemetry.WriteFile(*telemetryOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, "astraea-train: telemetry:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "astraea-train: wrote telemetry snapshot to %s\n", *telemetryOut)
	}

	cfg := core.DefaultConfig()
	strategy, err := core.NewRewardStrategy(*reward)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astraea-train:", err)
		fmt.Fprintln(os.Stderr, "astraea-train: known strategies:", core.RewardStrategyNames())
		os.Exit(1)
	}
	cfg.Reward = strategy.Name()
	rewardSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "reward" {
			rewardSet = true
		}
	})
	switch *mode {
	case "rl":
		if *checkpoint != "" || *resume != "" {
			if err := trainCheckpointed(cfg, reg, *episodes, *workers, *seed,
				*checkpoint, *checkpointEvery, *checkpointKeep, *resume, *out, rewardSet); err != nil {
				fmt.Fprintln(os.Stderr, "astraea-train:", err)
				os.Exit(1)
			}
			break
		}
		learner := env.NewParallelLearner(cfg, env.DefaultTrainingDistribution(), *seed, *workers)
		if reg != nil {
			learner.Instrument(reg)
		}
		done := 0
		for done < *episodes {
			batch := *workers
			if done+batch > *episodes {
				batch = *episodes - done
			}
			learner.Train(batch)
			done += batch
			last := learner.RewardHistory[len(learner.RewardHistory)-1]
			fmt.Printf("episodes %3d/%d: reward=%+.5f criticLoss=%.5f replay=%d\n",
				done, *episodes, last, learner.Trainer.LastCriticLoss, learner.Replay.Len())
		}
		if err := core.SavePolicy(*out, learner.Trainer.Actor); err != nil {
			fmt.Fprintln(os.Stderr, "astraea-train:", err)
			os.Exit(1)
		}
	case "distill":
		opts := core.DefaultDistillOptions()
		opts.Samples = *samples
		opts.Epochs = *epochs
		opts.Seed = *seed
		opts.Reward = cfg.Reward
		net, loss := core.DistillPolicy(cfg, opts)
		fmt.Printf("distilled reference policy: imitation MSE = %.6f\n", loss)
		if err := core.SavePolicy(*out, net); err != nil {
			fmt.Fprintln(os.Stderr, "astraea-train:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "astraea-train: unknown mode %q\n", *mode)
		os.Exit(1)
	}
	writeTelemetry()
	fmt.Println("wrote", *out)
}

// trainCheckpointed runs the serial, deterministic rl training loop with
// periodic crash-safe checkpoints. With -resume, training continues from
// the saved episode count toward the -episodes total; the resumed
// trajectory is bitwise-identical to an uninterrupted run of the same
// length.
func trainCheckpointed(cfg core.Config, reg *telemetry.Registry,
	episodes, workers int, seed int64, ckptPath string, every, keep int, resume, out string,
	rewardSet bool) error {

	if workers > 1 {
		fmt.Fprintln(os.Stderr, "astraea-train: checkpointed training is serial for determinism; ignoring -workers")
	}
	if every < 1 {
		every = 1
	}
	var learner *env.Learner
	if resume != "" {
		l, err := env.LoadLearner(resume)
		if err != nil {
			return err
		}
		if rewardSet && l.StrategyName() != cfg.RewardName() {
			return fmt.Errorf("checkpoint %s was trained under reward strategy %q; -reward %q would change the objective mid-run — refusing to resume",
				resume, l.StrategyName(), cfg.RewardName())
		}
		learner = l
		fmt.Fprintf(os.Stderr, "astraea-train: resumed from %s at episode %d (strategy %s)\n",
			resume, learner.Episodes, learner.StrategyName())
	} else {
		learner = env.NewLearner(cfg, env.DefaultTrainingDistribution(), seed)
	}
	if reg != nil {
		learner.Instrument(reg)
	}
	save := func() error {
		if ckptPath == "" {
			return nil
		}
		if err := learner.SaveCheckpoint(ckptPath); err != nil {
			return err
		}
		if keep > 0 {
			// Rotated series: an episode-numbered copy beside the resume
			// target, then prune — newest -checkpoint-keep members survive,
			// plus the one pinned by a promotion (<path>.promoted).
			member := ckpt.SeriesName(ckptPath, learner.Episodes)
			if err := learner.SaveCheckpoint(member); err != nil {
				return err
			}
			if _, err := ckpt.PruneSeries(ckptPath, keep, ckpt.ReadPin(ckptPath)); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "astraea-train: checkpointed episode %d to %s\n", learner.Episodes, ckptPath)
		return nil
	}
	for learner.Episodes < episodes {
		learner.RunEpisodeAndTrain()
		last := learner.RewardHistory[len(learner.RewardHistory)-1]
		fmt.Printf("episodes %3d/%d: reward=%+.5f criticLoss=%.5f replay=%d\n",
			learner.Episodes, episodes, last, learner.Trainer.LastCriticLoss, learner.Replay.Len())
		if learner.Episodes%every == 0 && learner.Episodes < episodes {
			if err := save(); err != nil {
				return err
			}
		}
	}
	if err := save(); err != nil {
		return err
	}
	return core.SavePolicy(out, learner.Trainer.Actor)
}
