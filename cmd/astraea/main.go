// Command astraea runs congestion-control scenarios on the emulation
// substrate and prints per-flow results: any registered scheme, any
// bottleneck shape, optional flow staggering.
//
// Examples:
//
//	astraea -scheme astraea -bw 100 -rtt 30 -flows 3 -interval 40 -dur 200
//	astraea -scheme cubic -bw 42 -rtt 800 -loss 0.0074 -dur 100
//	astraea -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cc"
	"repro/internal/flowtrace"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/transport"
)

func main() {
	scheme := flag.String("scheme", "astraea", "congestion control scheme")
	list := flag.Bool("list", false, "list registered schemes and exit")
	bw := flag.Float64("bw", 100, "bottleneck bandwidth in Mbps")
	rtt := flag.Float64("rtt", 30, "base RTT in ms")
	bufBDP := flag.Float64("buf", 1, "buffer size in BDP multiples")
	loss := flag.Float64("loss", 0, "random loss probability")
	flows := flag.Int("flows", 1, "number of flows")
	interval := flag.Float64("interval", 0, "flow start stagger in seconds")
	dur := flag.Float64("dur", 30, "run duration in seconds")
	seed := flag.Int64("seed", 1, "random seed")
	series := flag.Bool("series", false, "print per-flow throughput timeseries")
	traceOut := flag.String("trace", "", "write a per-flow control-event CSV (cwnd changes, losses) to this file")
	flag.Parse()

	if *list {
		for _, n := range cc.Names() {
			fmt.Println(n)
		}
		return
	}

	sc := runner.Scenario{
		Seed:     *seed,
		RateBps:  *bw * 1e6,
		BaseRTT:  *rtt / 1000,
		QueueBDP: *bufBDP,
		LossProb: *loss,
		Duration: *dur,
	}
	var tracer *flowtrace.Tracer
	if *traceOut != "" {
		tracer = &flowtrace.Tracer{Cap: 1 << 20}
		sc.OnFlowCreated = func(i int, f *transport.Flow) { flowtrace.Attach(tracer, f) }
	}
	for i := 0; i < *flows; i++ {
		sc.Flows = append(sc.Flows, runner.FlowSpec{
			Scheme: *scheme,
			Start:  float64(i) * *interval,
		})
	}
	res, err := runner.Run(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astraea:", err)
		os.Exit(1)
	}

	fmt.Printf("scheme=%s bw=%.0fMbps rtt=%.0fms buf=%.1fBDP dur=%.0fs utilization=%.3f\n",
		*scheme, *bw, *rtt, *bufBDP, *dur, res.Utilization)
	for i, fr := range res.Flows {
		fmt.Printf("flow %d: avg=%.1f Mbps rtt(avg/min)=%.1f/%.1f ms loss=%.4f\n",
			i, fr.AvgTputBps/1e6, fr.AvgRTT*1000, fr.MinRTT*1000, fr.LossRate)
	}
	if *flows > 1 {
		var avgs []float64
		for _, fr := range res.Flows {
			avgs = append(avgs, fr.AvgTputBps)
		}
		fmt.Printf("jain index: %.4f\n", metrics.Jain(avgs))
	}
	if *series {
		fmt.Println("time_s flow_mbps...")
		for i := 0; i < len(res.Flows[0].Tput.Values); i += 10 {
			fmt.Printf("%6.1f", float64(i)*res.Flows[0].Tput.Interval)
			for _, fr := range res.Flows {
				fmt.Printf(" %7.2f", fr.Tput.Values[i]/1e6)
			}
			fmt.Println()
		}
	}
	if tracer != nil {
		out, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "astraea:", err)
			os.Exit(1)
		}
		defer out.Close()
		if err := tracer.WriteCSV(out); err != nil {
			fmt.Fprintln(os.Stderr, "astraea:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
}
