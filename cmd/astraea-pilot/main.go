// Command astraea-pilot closes the learning loop in production shape:
// continuous training, a regression gate against the serving incumbent,
// sealed generation artifacts with bounded history, hot promotion into a
// live astraea-serve fleet, and instant rollback when the fleet's own
// telemetry shows the new policy regressing.
//
// The pilot promotes by atomically publishing the sealed artifact to the
// weights file an `astraea-serve -reload` daemon watches, then confirms the
// swap by scraping serve_policy_generation off the daemon's /metrics
// endpoint. Health during probation is read from the same endpoint
// (serve_requests_total vs serve_fallback_total).
//
// Examples:
//
//	# terminal 1: the serving fleet, watching a weights file
//	astraea-serve -policy serving.policy -listen 127.0.0.1:9000 \
//	    -reload 100ms -pprof 127.0.0.1:9090
//
//	# terminal 2: the closed loop — train, gate, promote, watch, roll back
//	astraea-pilot -promote serving.policy -serve-metrics http://127.0.0.1:9090/metrics \
//	    -dir gens -rounds 8 -episodes-per-round 25 -checkpoint pilot.ckpt
//
// Gate floors default to the paper-motivated regression bars (candidate
// must retain ≥95% of incumbent utilization and Jain fairness, ≤110% of its
// RTT). `-gate-min-jain 1.5` is a handy way to force a refusal when
// rehearsing the failure path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/pilot"
	"repro/internal/rl"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/tournament"
)

func main() {
	// Serving fleet.
	promote := flag.String("promote", "", "serving weights file to promote into (the file astraea-serve -reload watches; required)")
	serveMetrics := flag.String("serve-metrics", "", "fleet /metrics URL for promotion confirmation and probation health (e.g. http://127.0.0.1:9090/metrics)")
	confirmTimeout := flag.Duration("confirm-timeout", 5*time.Second, "how long to wait for the fleet to confirm a promoted generation (0 = publish blind)")

	// Generation store.
	dir := flag.String("dir", "pilot-gens", "generation store directory (manifest + sealed artifacts)")
	keepGens := flag.Int("keep-generations", 8, "sealed generations to keep on disk (serving generation and its parent always survive)")

	// Training loop.
	episodesPerRound := flag.Int("episodes-per-round", 25, "episodes trained between gate evaluations")
	rounds := flag.Int("rounds", 4, "gate evaluations to run before exiting")
	workers := flag.Int("workers", 4, "parallel environment instances (also the gate's replay workers)")
	seed := flag.Int64("seed", 1, "random seed")
	reward := flag.String("reward", "", "reward strategy: paper (default), aurora, maxmin, alpha[:a]")
	rlHidden := flag.String("rl-hidden", "", "actor/critic hidden sizes as a comma list (e.g. 32,32; empty = library default)")
	episodeDuration := flag.Float64("episode-duration", 0, "seconds simulated per training episode (0 = distribution default of 30)")
	maxFlows := flag.Int("max-flows", 0, "cap on flows per training episode (0 = distribution default of 5)")
	checkpoint := flag.String("checkpoint", "", "crash-safe training checkpoint path (resumed automatically when it exists)")
	checkpointEvery := flag.Int("checkpoint-every", 25, "episodes between checkpoint writes when -checkpoint is set")
	checkpointKeep := flag.Int("checkpoint-keep", 3, "rotated episode-numbered checkpoint copies to keep (plus the promoted pin; 0 = single file)")

	// Regression gate.
	gateFamilies := flag.String("gate-families", "", "comma list of scenario families for the gate suite (empty = all)")
	gateFlows := flag.Int("gate-flows", 8, "flows per gate scenario")
	gateDuration := flag.Float64("gate-duration", 5, "seconds simulated per gate scenario")
	gateSeed := flag.Int64("gate-seed", 42, "seed of the fixed gate suite")
	gateUtilFloor := flag.Float64("gate-util-floor", tournament.DefaultGateFloors().UtilRatio, "candidate/incumbent utilization ratio floor")
	gateJainFloor := flag.Float64("gate-jain-floor", tournament.DefaultGateFloors().JainRatio, "candidate/incumbent Jain index ratio floor")
	gateRTTCeiling := flag.Float64("gate-rtt-ceiling", tournament.DefaultGateFloors().RTTRatio, "candidate/incumbent mean RTT ratio ceiling")
	gateMinUtil := flag.Float64("gate-min-util", 0, "absolute utilization floor (0 = disabled)")
	gateMinJain := flag.Float64("gate-min-jain", 0, "absolute Jain index floor (0 = disabled)")

	// Probation.
	probation := flag.Float64("probation", pilot.DefaultHealthPolicy().ProbationSeconds, "seconds to watch fleet health after each promotion (0 = skip)")
	healthInterval := flag.Float64("health-interval", pilot.DefaultHealthPolicy().IntervalSeconds, "seconds between probation health samples")
	healthMinRequests := flag.Int64("health-min-requests", pilot.DefaultHealthPolicy().MinRequests, "minimum requests per window before judging health")
	healthMaxDegraded := flag.Float64("health-max-degraded", pilot.DefaultHealthPolicy().MaxDegradedRate, "fallback-rate above which a window counts as regressed")

	// Observability.
	telemetryOut := flag.String("telemetry", "", "write a telemetry snapshot to this path at exit (.json = JSON, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and live /metrics on this address")
	flag.Parse()

	if *promote == "" {
		fmt.Fprintln(os.Stderr, "astraea-pilot: -promote is required (the weights file the serving fleet watches)")
		os.Exit(1)
	}

	reg := telemetry.NewRegistry()
	runner.InstrumentProcess(reg)
	if *pprofAddr != "" {
		bound, stop, err := telemetry.Serve(*pprofAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "astraea-pilot: serving pprof and /metrics on http://%s\n", bound)
	}

	cfg := core.DefaultConfig()
	strategy, err := core.NewRewardStrategy(*reward)
	if err != nil {
		fatal(err)
	}
	cfg.Reward = strategy.Name()

	dist := env.DefaultTrainingDistribution()
	if *episodeDuration > 0 {
		dist.EpisodeDuration = *episodeDuration
	}
	if *maxFlows > 0 {
		dist.MaxFlows = *maxFlows
		if dist.MinFlows > dist.MaxFlows {
			dist.MinFlows = dist.MaxFlows
		}
	}

	learner, err := buildLearner(cfg, dist, *rlHidden, *checkpoint, *seed, *workers)
	if err != nil {
		fatal(err)
	}
	learner.Instrument(reg)

	store, err := pilot.OpenStore(*dir, *keepGens)
	if err != nil {
		fatal(err)
	}

	gate := tournament.GateConfig{
		Flows:    *gateFlows,
		Duration: *gateDuration,
		Seed:     *gateSeed,
		Workers:  *workers,
		Floors: tournament.GateFloors{
			UtilRatio: *gateUtilFloor,
			JainRatio: *gateJainFloor,
			RTTRatio:  *gateRTTCeiling,
			MinUtil:   *gateMinUtil,
			MinJain:   *gateMinJain,
		},
	}
	if *gateFamilies != "" {
		gate.Families = splitList(*gateFamilies)
	}

	sup, err := pilot.New(pilot.Options{
		Store:   store,
		Learner: learner,
		Target: &pilot.FileTarget{
			ServingPath:    *promote,
			MetricsURL:     *serveMetrics,
			ConfirmTimeout: *confirmTimeout,
		},
		EpisodesPerRound: *episodesPerRound,
		Rounds:           *rounds,
		Gate:             gate,
		Health: pilot.HealthPolicy{
			ProbationSeconds: *probation,
			IntervalSeconds:  *healthInterval,
			MinRequests:      *healthMinRequests,
			MaxDegradedRate:  *healthMaxDegraded,
		},
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *checkpointEvery,
		CheckpointKeep:  *checkpointKeep,
		Registry:        reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "astraea-pilot: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runErr := sup.Run(ctx)

	if *telemetryOut != "" {
		if err := telemetry.WriteFile(*telemetryOut, reg); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "astraea-pilot: wrote telemetry snapshot to %s\n", *telemetryOut)
	}
	if runErr != nil && runErr != context.Canceled {
		fatal(runErr)
	}
	if cur, ok := store.Current(); ok {
		fmt.Printf("serving generation %d (parent %d, %s) after %d episodes\n",
			cur.Gen, cur.Parent, cur.Status, learner.Episodes)
	}
}

// buildLearner resumes the parallel learner from the checkpoint when one
// exists, otherwise builds a fresh one (optionally with custom hidden
// sizes for smoke-scale runs).
func buildLearner(cfg core.Config, dist env.TrainingDistribution, hidden, ckptPath string, seed int64, workers int) (*env.ParallelLearner, error) {
	if ckptPath != "" {
		if _, err := os.Stat(ckptPath); err == nil {
			l, err := env.LoadParallelLearner(ckptPath, workers)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "astraea-pilot: resumed from %s at episode %d (strategy %s)\n",
				ckptPath, l.Episodes, l.StrategyName())
			return l, nil
		}
	}
	if hidden == "" {
		return env.NewParallelLearner(cfg, dist, seed, workers), nil
	}
	rlCfg := rl.DefaultConfig(cfg.StateDim(), core.GlobalFeatureDim, 1)
	rlCfg.Hidden = nil
	for _, part := range splitList(hidden) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("astraea-pilot: bad -rl-hidden entry %q", part)
		}
		rlCfg.Hidden = append(rlCfg.Hidden, n)
	}
	return env.NewParallelLearnerRL(cfg, dist, rlCfg, 50000, seed, workers), nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "astraea-pilot:", err)
	os.Exit(1)
}
