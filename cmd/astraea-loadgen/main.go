// Command astraea-loadgen drives an astraea-serve endpoint and reports
// achieved throughput and latency percentiles. Three modes:
//
//   - Open-loop (default): a fixed -rate schedule; latencies are measured
//     from each request's intended send time, so coordinated omission
//     cannot hide server stalls, and the summary reports the generator's
//     own worst scheduling lag.
//   - Closed-loop (-rate 0): every sender keeps one request in flight
//     back-to-back — the saturation throughput at -conns × -outstanding.
//   - Knee sweep (-knee): closed-loop steps at doubling -outstanding until
//     throughput stops improving; reports the knee (lowest concurrency
//     within 90% of max throughput) plus the full curve.
//
// The JSON summary (stdout or -out) feeds the serving benchmark trajectory
// (scripts/bench-serve.sh → BENCH_serve.json); the human-readable lines go
// to stderr. -commit and -shards stamp provenance into the knee report.
//
// Exit status: 0 when every request was answered (fallback answers count as
// answered — that is the serving contract), 1 when any request failed hard
// (timeout or transport error) or a knee sweep measured zero throughput,
// 2 on usage errors.
//
// Examples:
//
//	astraea-loadgen -addr tcp:127.0.0.1:9000 -rate 5000 -duration 10s
//	astraea-loadgen -addr tcp:127.0.0.1:9000 -knee -conns 8 -flows
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "tcp:127.0.0.1:9000", "endpoint to drive, network:address (tcp or unix stream)")
	rate := flag.Float64("rate", 1000, "target aggregate request rate (req/s); 0 = closed-loop saturation")
	duration := flag.Duration("duration", time.Second, "run length (per step in -knee mode)")
	conns := flag.Int("conns", 4, "connections to spread load over")
	outstanding := flag.Int("outstanding", 16, "pipelined requests per connection (max tried in -knee mode)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request timeout (a hard failure when exceeded)")
	flows := flag.Bool("flows", false, "tag each sender with a distinct flow ID (spreads load across server shards)")
	knee := flag.Bool("knee", false, "sweep closed-loop concurrency to find the max-throughput knee")
	commit := flag.String("commit", "", "source commit hash to stamp into the report's provenance")
	shards := flag.Int("shards", 0, "server shard count to stamp into the report's provenance")
	out := flag.String("out", "-", `JSON summary destination ("-" = stdout)`)
	flag.Parse()

	network, address, ok := strings.Cut(*addr, ":")
	if !ok {
		fmt.Fprintf(os.Stderr, "astraea-loadgen: bad -addr %q (want network:address)\n", *addr)
		os.Exit(2)
	}

	var doc any
	exit := 0
	if *knee {
		rep, err := serve.RunKnee(serve.KneeOptions{
			Network: network, Address: address,
			Conns:          *conns,
			StepDuration:   *duration,
			MaxOutstanding: *outstanding,
			Timeout:        *timeout,
			TagFlows:       *flows,
			Log:            func(line string) { fmt.Fprintln(os.Stderr, "astraea-loadgen:", line) },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "astraea-loadgen:", err)
			os.Exit(2)
		}
		rep.Env.Commit = *commit
		rep.Env.Shards = *shards
		fmt.Fprintf(os.Stderr, "astraea-loadgen: knee %.0f req/s at %d conns × %d outstanding (p50 %.2fms p99 %.2fms, max %.0f req/s)\n",
			rep.AchievedRPS, rep.Conns, rep.KneeOutstanding, rep.P50Ms, rep.P99Ms, rep.MaxRPS)
		if rep.AchievedRPS <= 0 {
			fmt.Fprintln(os.Stderr, "astraea-loadgen: knee sweep measured zero throughput")
			exit = 1
		}
		doc = rep
	} else {
		sum, err := serve.RunLoad(serve.LoadOptions{
			Network:     network,
			Address:     address,
			Rate:        *rate,
			ClosedLoop:  *rate <= 0,
			Duration:    *duration,
			Conns:       *conns,
			Outstanding: *outstanding,
			Timeout:     *timeout,
			TagFlows:    *flows,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "astraea-loadgen:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "astraea-loadgen:", sum.String())
		if sum.Failed > 0 {
			fmt.Fprintf(os.Stderr, "astraea-loadgen: %d requests failed hard\n", sum.Failed)
			exit = 1
		}
		doc = sum
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "astraea-loadgen:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "astraea-loadgen:", err)
		os.Exit(2)
	}
	if exit != 0 {
		os.Exit(exit)
	}
}
