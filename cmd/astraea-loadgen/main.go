// Command astraea-loadgen drives an astraea-serve endpoint with open-loop
// load and reports achieved throughput and latency percentiles. The JSON
// summary (stdout or -out) feeds the serving benchmark trajectory
// (scripts/bench-serve.sh → BENCH_serve.json); the human-readable line goes
// to stderr.
//
// Exit status: 0 when every request was answered (fallback answers count as
// answered — that is the serving contract), 1 when any request failed hard
// (timeout or transport error), 2 on usage errors.
//
// Example:
//
//	astraea-loadgen -addr tcp:127.0.0.1:9000 -rate 5000 -duration 10s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "tcp:127.0.0.1:9000", "endpoint to drive, network:address (tcp or unix stream)")
	rate := flag.Float64("rate", 1000, "target aggregate request rate (req/s)")
	duration := flag.Duration("duration", time.Second, "run length")
	conns := flag.Int("conns", 4, "connections to spread load over")
	outstanding := flag.Int("outstanding", 16, "pipelined requests per connection")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request timeout (a hard failure when exceeded)")
	out := flag.String("out", "-", `JSON summary destination ("-" = stdout)`)
	flag.Parse()

	network, address, ok := strings.Cut(*addr, ":")
	if !ok {
		fmt.Fprintf(os.Stderr, "astraea-loadgen: bad -addr %q (want network:address)\n", *addr)
		os.Exit(2)
	}

	sum, err := serve.RunLoad(serve.LoadOptions{
		Network:     network,
		Address:     address,
		Rate:        *rate,
		Duration:    *duration,
		Conns:       *conns,
		Outstanding: *outstanding,
		Timeout:     *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "astraea-loadgen:", err)
		os.Exit(2)
	}

	fmt.Fprintln(os.Stderr, "astraea-loadgen:", sum.String())

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "astraea-loadgen:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "astraea-loadgen:", err)
		os.Exit(2)
	}

	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "astraea-loadgen: %d requests failed hard\n", sum.Failed)
		os.Exit(1)
	}
}
