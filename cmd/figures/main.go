// Command figures regenerates every table and figure of the paper's
// evaluation from the emulation substrate and prints them as aligned text
// (optionally CSV).
//
// Usage:
//
//	figures [-quick] [-csv] [-only fig6,fig12,...] [-workers N]
//	        [-telemetry out.prom] [-pprof 127.0.0.1:6060]
//
// -telemetry writes a metrics snapshot (Prometheus text, or JSON for a
// .json path) at exit; -pprof serves net/http/pprof and a live /metrics
// endpoint while the run is in progress.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced trials/durations")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	only := flag.String("only", "", "comma-separated figure/table IDs to run (prefix match, e.g. fig6)")
	trials := flag.Int("trials", 0, "override trial count")
	scale := flag.Float64("scale", 0, "override duration scale (1.0 = paper)")
	outdir := flag.String("outdir", "", "also write one CSV per table into this directory")
	workers := flag.Int("workers", 0, "scenario worker pool size (0 = GOMAXPROCS; results identical for any value)")
	telemetryOut := flag.String("telemetry", "", "write a telemetry snapshot to this path at exit (.json = JSON, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and live /metrics on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()

	var reg *telemetry.Registry
	if *telemetryOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		runner.InstrumentProcess(reg)
	}
	if *pprofAddr != "" {
		bound, stop, err := telemetry.Serve(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures: pprof:", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "figures: serving pprof and /metrics on http://%s\n", bound)
	}

	o := experiments.Full()
	if *quick {
		o = experiments.Quick()
	}
	if *trials > 0 {
		o.Trials = *trials
	}
	if *scale > 0 {
		o.TimeScale = *scale
	}
	o.Workers = *workers
	o.Telemetry = reg

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	selected := func(id string) bool {
		if len(want) == 0 {
			return true
		}
		for w := range want {
			if strings.HasPrefix(id, w) {
				return true
			}
		}
		return false
	}

	runs := []struct {
		id string
		fn func(experiments.Opts) []*experiments.Table
	}{
		{"table1", one(experiments.ExpTable1)},
		{"fig1a", one(experiments.ExpFigure1a)},
		{"fig1b", one(experiments.ExpFigure1b)},
		{"fig2", experiments.ExpFigure2},
		{"fig4", one(experiments.ExpFigure4)},
		{"fig6", experiments.ExpFigure6},
		{"fig7", one(experiments.ExpFigure7)},
		{"fig8", one(experiments.ExpFigure8)},
		{"fig9", one(experiments.ExpFigure9)},
		{"fig10", one(experiments.ExpFigure10)},
		{"fig10-large", one(experiments.ExpFigure10Large)},
		{"fig11", one(experiments.ExpFigure11)},
		{"fig12", one(experiments.ExpFigure12)},
		{"fig13", experiments.ExpFigure13},
		{"fig14", one(experiments.ExpFigure14)},
		{"fig15", experiments.ExpFigure15},
		{"fig16", experiments.ExpFigure16},
		{"fig17", one(experiments.ExpFigure17)},
		{"fig18", one(experiments.ExpFigure18)},
		{"fig19", experiments.ExpFigure19},
		{"fig20", one(experiments.ExpFigure20)},
		{"fig21", one(experiments.ExpFigure21)},
		{"fig22", one(experiments.ExpFigure22)},
		{"ablation-alpha", one(experiments.ExpAblationAlpha)},
		{"ablation-drain", one(experiments.ExpAblationDrain)},
		{"ablation-history", one(experiments.ExpAblationHistory)},
		{"coexistence", one(experiments.ExpCoexistenceMatrix)},
		{"parkinglot", one(experiments.ExpParkingLot)},
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}
	ran := 0
	for _, r := range runs {
		if !selected(r.id) {
			continue
		}
		for _, t := range r.fn(o) {
			if *csv {
				fmt.Printf("# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
			if *outdir != "" {
				path := filepath.Join(*outdir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "figures:", err)
					os.Exit(1)
				}
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "figures: nothing matched -only=%q\n", *only)
		os.Exit(1)
	}
	if *telemetryOut != "" {
		if err := telemetry.WriteFile(*telemetryOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, "figures: telemetry:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: wrote telemetry snapshot to %s\n", *telemetryOut)
	}
}

func one(fn func(experiments.Opts) *experiments.Table) func(experiments.Opts) []*experiments.Table {
	return func(o experiments.Opts) []*experiments.Table {
		return []*experiments.Table{fn(o)}
	}
}
