// Command astraea-infer runs the shared batched inference service of §4 as
// a standalone daemon: senders submit state vectors over a UDP or UNIX
// datagram socket and receive actions, with requests accumulated into
// batches (5 ms window by default) before the policy evaluates them.
//
// Examples:
//
//	astraea-infer -listen udp:127.0.0.1:9000 -policy reference
//	astraea-infer -listen unixgram:/tmp/astraea.sock -policy actor.json
//	astraea-infer -listen udp:127.0.0.1:9000 -policy actor.aqp
//
// Policy files load through the same format sniffing as astraea-serve:
// quantized blobs (cmd/astraea-quantize) serve the fixed-point compiled
// form; JSON actor weights are compiled to it at load unless -float keeps
// the float64 oracle network.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
)

func main() {
	listen := flag.String("listen", "udp:127.0.0.1:9000", "network:address to serve on (udp:host:port or unixgram:/path)")
	policyArg := flag.String("policy", "reference", `"reference", a path to JSON actor weights, or a quantized blob (astraea-quantize)`)
	floatPath := flag.Bool("float", false, "serve JSON actor weights as float64 instead of compiling them to the quantized fixed-point form")
	window := flag.Duration("window", 5*time.Millisecond, "batching window")
	maxBatch := flag.Int("max-batch", 256, "flush threshold")
	flag.Parse()

	network, address, ok := strings.Cut(*listen, ":")
	if !ok {
		fmt.Fprintf(os.Stderr, "astraea-infer: bad -listen %q\n", *listen)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	var policy core.Policy
	if *policyArg == "reference" {
		policy = core.NewReferencePolicy(cfg)
	} else {
		p, err := core.LoadServingPolicy(*policyArg, cfg, !*floatPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "astraea-infer:", err)
			os.Exit(1)
		}
		policy = p
	}

	svc := core.NewService(cfg, policy)
	svc.BatchWindow = *window
	svc.MaxBatch = *maxBatch
	srv, err := core.ListenAndServe(svc, network, address)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astraea-infer:", err)
		os.Exit(1)
	}
	fmt.Printf("astraea-infer: serving on %s (%s), batch window %v, max batch %d\n",
		srv.Addr(), network, *window, *maxBatch)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	requests, batches := svc.Stats()
	fmt.Printf("astraea-infer: shutting down after %d requests in %d batches\n",
		requests, batches)
	srv.Close()
}
