// Command astraea-fairlab runs the reward-strategy ablation: one
// short-budget learner per strategy, trained under identical conditions,
// evaluated head-to-head on a fixed fairness grid and ranked on
// Jain-over-time, convergence speed, and throughput cost per fairness point.
//
// Examples:
//
//	astraea-fairlab -out results/fairness_lab
//	astraea-fairlab -strategies paper,aurora -episodes 2 -out /tmp/smoke
//	astraea-fairlab -strategies paper,maxmin,alpha:2 -actors actors/
//
// -out writes <out>.json (machine-readable report) and <out>.txt (rendered
// table). -actors additionally saves each strategy's trained policy as
// <dir>/<strategy>.json, loadable by astraea-tournament -actors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	strategies := flag.String("strategies", strings.Join(experiments.DefaultFairnessLabOptions().Strategies, ","),
		"comma-separated reward strategies to compare")
	episodes := flag.Int("episodes", experiments.DefaultFairnessLabOptions().Episodes,
		"training episodes per strategy")
	seed := flag.Int64("seed", 1, "lab seed (training and evaluation)")
	workers := flag.Int("workers", 4, "strategies trained concurrently")
	out := flag.String("out", "results/fairness_lab", "output stem; writes <out>.json and <out>.txt")
	actorDir := flag.String("actors", "", "also save each trained actor as <dir>/<strategy>.json")
	flag.Parse()

	opts := experiments.DefaultFairnessLabOptions()
	opts.Strategies = nil
	for _, s := range strings.Split(*strategies, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, err := core.NewRewardStrategy(s); err != nil {
			fmt.Fprintln(os.Stderr, "astraea-fairlab:", err)
			fmt.Fprintln(os.Stderr, "astraea-fairlab: known strategies:", core.RewardStrategyNames())
			os.Exit(1)
		}
		opts.Strategies = append(opts.Strategies, s)
	}
	opts.Episodes = *episodes
	opts.Seed = *seed
	opts.Workers = *workers

	report, err := experiments.RunFairnessLab(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astraea-fairlab:", err)
		os.Exit(1)
	}

	table := report.Table()
	fmt.Print(table.String())

	if err := os.MkdirAll(filepath.Dir(*out+".json"), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "astraea-fairlab:", err)
		os.Exit(1)
	}
	js, err := report.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "astraea-fairlab:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out+".json", append(js, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "astraea-fairlab:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out+".txt", []byte(table.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "astraea-fairlab:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "astraea-fairlab: wrote %s.json and %s.txt\n", *out, *out)

	if *actorDir != "" {
		if err := os.MkdirAll(*actorDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "astraea-fairlab:", err)
			os.Exit(1)
		}
		for name, policy := range report.Actors {
			path := filepath.Join(*actorDir, experiments.SanitizeStrategyFilename(name)+".json")
			if err := core.SavePolicy(path, policy.Net); err != nil {
				fmt.Fprintln(os.Stderr, "astraea-fairlab:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "astraea-fairlab: saved %s actor to %s\n", name, path)
		}
	}
}
