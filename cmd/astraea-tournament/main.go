// Command astraea-tournament runs every registered congestion-control
// scheme through a fixed grid of scenario families (incast fan-in,
// oscillating bandwidth, steady dumbbell, lossy path) and ranks them by
// throughput × Jain fairness × delay — the Astraea reward axes. Each
// family pins one deterministic scenario per scheme, so a cell isolates
// the controller; the grid fans across the batch pool and the ranking is
// byte-identical for any worker count.
//
// Examples:
//
//	astraea-tournament                              # full grid, report under results/
//	astraea-tournament -schemes cubic,bbr,astraea -flows 16
//	astraea-tournament -families incast,oscillating -duration 2 -check
//	astraea-tournament -actors maxmin=actors/maxmin.json,alpha2=actors/alpha_2.json
//
// -actors enters pre-trained policy files (e.g. saved by astraea-fairlab
// -actors) as additional competitors under their given names.
//
// Writes results/tournament.json (full cells + ranking) and
// results/tournament.txt (the table printed to stdout).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cc"
	"repro/internal/tournament"
)

func main() {
	schemes := flag.String("schemes", "", "comma-separated schemes to enter (default: all registered)")
	familiesFlag := flag.String("families", "", fmt.Sprintf("comma-separated families (default: all of %v)", tournament.FamilyNames()))
	flows := flag.Int("flows", 8, "flows per scenario")
	duration := flag.Float64("duration", 5, "seconds of simulated time per scenario")
	seed := flag.Int64("seed", 1, "base seed; each family offsets it deterministically")
	workers := flag.Int("workers", 0, "batch pool size (0 = GOMAXPROCS)")
	out := flag.String("out", "results", "output directory for tournament.json and tournament.txt")
	checkFlag := flag.Bool("check", false, "attach the invariant checker to every cell and report violation counts")
	actorsFlag := flag.String("actors", "", "comma-separated name=path policy entries (weights saved by astraea-fairlab -actors)")
	flag.Parse()

	actors, err := parseActors(*actorsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astraea-tournament:", err)
		os.Exit(1)
	}

	cfg := tournament.Config{
		Schemes:  splitList(*schemes),
		Actors:   actors,
		Families: splitList(*familiesFlag),
		Flows:    *flows,
		Duration: *duration,
		Seed:     *seed,
		Workers:  *workers,
		Check:    *checkFlag,
	}

	rep, err := tournament.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astraea-tournament:", err)
		if strings.Contains(err.Error(), "scheme") {
			fmt.Fprintf(os.Stderr, "registered schemes: %v\n", cc.Names())
		}
		os.Exit(1)
	}

	if err := rep.WriteTable(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "astraea-tournament:", err)
		os.Exit(1)
	}

	if *out != "" {
		if err := writeReport(rep, *out); err != nil {
			fmt.Fprintln(os.Stderr, "astraea-tournament:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s and %s\n",
			filepath.Join(*out, "tournament.json"), filepath.Join(*out, "tournament.txt"))
	}
}

// parseActors turns "name=path,name=path" into ActorSpecs; further
// validation (name collisions, loadable weights) happens in tournament.Run.
func parseActors(s string) ([]tournament.ActorSpec, error) {
	var specs []tournament.ActorSpec
	for _, part := range splitList(s) {
		name, path, ok := strings.Cut(part, "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("-actors entry %q: want name=path", part)
		}
		specs = append(specs, tournament.ActorSpec{Name: name, Path: path})
	}
	return specs, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

func writeReport(rep *tournament.Report, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, "tournament.json"))
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := rep.WriteJSON(jf); err != nil {
		return err
	}
	tf, err := os.Create(filepath.Join(dir, "tournament.txt"))
	if err != nil {
		return err
	}
	defer tf.Close()
	return rep.WriteTable(tf)
}
