// Command astraea-serve is the production policy inference daemon: the
// shared batched service of §4 behind real network transports, with
// per-request deadlines, admission control, a deterministic fallback
// action, hot policy reload, and graceful drain.
//
// Transports: TCP and unix stream sockets speak the length-prefixed framing
// of internal/serve; udp and unixgram endpoints speak the bare datagram
// codec, so existing core.ServiceClient senders keep working.
//
// Policy artifacts: -policy accepts "reference", JSON actor weights, or a
// quantized blob from cmd/astraea-quantize. JSON weights are compiled to
// the fixed-point serving form at load by default (several times faster
// per inference, see DESIGN.md §12); -float keeps the float64 network —
// the equivalence oracle — instead. Blobs always serve quantized.
//
// Examples:
//
//	astraea-serve -listen tcp:127.0.0.1:9000 -policy reference
//	astraea-serve -listen tcp::9000,unixgram:/tmp/astraea.sock \
//	    -policy actor.json -reload 1s -deadline 10ms -telemetry :9090
//	astraea-serve -listen tcp::9000 -policy actor.aqp
//
// Signals: SIGHUP reloads the policy file in place (version bump, no
// dropped requests); SIGINT/SIGTERM drain gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "tcp:127.0.0.1:9000",
		"comma-separated endpoints, each network:address (tcp:host:port, unix:/path, udp:host:port, unixgram:/path)")
	policyArg := flag.String("policy", "reference", `"reference", a path to JSON actor weights, or a quantized blob (astraea-quantize)`)
	floatPath := flag.Bool("float", false, "serve JSON actor weights as float64 instead of compiling them to the quantized fixed-point form")
	reload := flag.Duration("reload", 0,
		"poll the -policy file at this interval and hot-reload on change (0 disables; SIGHUP always reloads)")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics and /debug/pprof on this address (e.g. :9090)")
	pprofAddr := flag.String("pprof", "", "alias for -telemetry (the endpoint includes pprof)")
	shards := flag.Int("shards", 0, "policy shards, each with its own evaluator and cloned policy (default GOMAXPROCS, capped at 16)")
	maxInflight := flag.Int("max-inflight", 64, "compatibility knob: feeds the per-shard queue-depth default")
	queueDepth := flag.Int("queue-depth", 0, "per-shard admission queue depth (default 4×max-inflight; overflow is shed)")
	deadline := flag.Duration("deadline", 20*time.Millisecond, "per-request budget before the fallback action is returned")
	window := flag.Duration("window", 5*time.Millisecond, "batching window of the shared service")
	maxBatch := flag.Int("max-batch", 256, "batch flush threshold")
	addrFile := flag.String("addr-file", "", "write the bound endpoints (one network:address per line) to this file")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a graceful drain may take before connections are cut")
	flag.Parse()

	if err := run(*listen, *policyArg, *floatPath, *reload, *telemetryAddr, *pprofAddr,
		*shards, *maxInflight, *queueDepth, *deadline, *window, *maxBatch, *addrFile, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "astraea-serve:", err)
		os.Exit(1)
	}
}

func run(listen, policyArg string, floatPath bool, reload time.Duration, telemetryAddr, pprofAddr string,
	shards, maxInflight, queueDepth int, deadline, window time.Duration, maxBatch int,
	addrFile string, drainTimeout time.Duration) error {

	cfg := core.DefaultConfig()
	var policy core.Policy
	policyPath := ""
	if policyArg == "reference" {
		policy = core.NewReferencePolicy(cfg)
	} else {
		p, err := core.LoadServingPolicy(policyArg, cfg, !floatPath)
		if err != nil {
			return err
		}
		policy = p
		policyPath = policyArg
		if qp, ok := p.(*core.QuantizedPolicy); ok {
			fmt.Printf("astraea-serve: serving quantized policy (%d layers, %d parameter bytes)\n",
				qp.Q.NumLayers(), qp.Q.ParamBytes())
		} else {
			fmt.Println("astraea-serve: serving float64 policy (-float oracle path)")
		}
	}

	svc := core.NewService(cfg, policy)
	svc.BatchWindow = window
	svc.MaxBatch = maxBatch
	srv := serve.NewServer(svc, cfg, serve.Options{
		Shards:      shards,
		MaxInflight: maxInflight,
		QueueDepth:  queueDepth,
		Deadline:    deadline,
	})
	reg := telemetry.NewRegistry()
	srv.Instrument(reg)

	var reloader *serve.Reloader
	if policyPath != "" {
		reloader = serve.NewReloader(srv, policyPath, cfg)
		reloader.Quantize = !floatPath
		reloader.Instrument(reg)
		if reload > 0 {
			reloader.Interval = reload
			reloader.Watch()
			defer reloader.Stop()
		}
	}

	if telemetryAddr == "" {
		telemetryAddr = pprofAddr
	}
	if telemetryAddr != "" {
		bound, closeHTTP, err := telemetry.Serve(telemetryAddr, reg)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer closeHTTP()
		fmt.Printf("astraea-serve: telemetry and pprof on http://%s/\n", bound)
	}

	var boundLines []string
	for _, spec := range strings.Split(listen, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		network, address, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("bad -listen entry %q (want network:address)", spec)
		}
		addr, err := srv.Listen(network, address)
		if err != nil {
			return err
		}
		fmt.Printf("astraea-serve: listening on %s:%s (deadline %v, %d shards)\n",
			network, addr, deadline, srv.Sharded().NumShards())
		boundLines = append(boundLines, network+":"+addr.String())
	}
	if len(boundLines) == 0 {
		return fmt.Errorf("no endpoints in -listen %q", listen)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(strings.Join(boundLines, "\n")+"\n"), 0o644); err != nil {
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}

	sig := make(chan os.Signal, 4)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s == syscall.SIGHUP {
			if reloader == nil {
				fmt.Println("astraea-serve: SIGHUP ignored (-policy reference has no file to reload)")
				continue
			}
			if v, err := reloader.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "astraea-serve: reload rejected:", err)
			} else {
				fmt.Printf("astraea-serve: policy reloaded, now version %d\n", v)
			}
			continue
		}
		break // SIGINT / SIGTERM: drain
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	requests, batches := srv.Stats()
	fmt.Printf("astraea-serve: drained after %d requests in %d batches across %d shards (policy version %d)\n",
		requests, batches, srv.Sharded().NumShards(), srv.PolicyVersion())
	if err != nil {
		return fmt.Errorf("drain forced after %v: %w", drainTimeout, err)
	}
	return nil
}
