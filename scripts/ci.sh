#!/usr/bin/env bash
# Tier-1 gate: build, vet, tests, fuzz smoke, coverage, then the race
# detector over the full tree. The race pass is the slowest stage (the
# parallel learner trains real episodes under -race); keep it last so fast
# failures surface first.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The examples are documentation that compiles; build and vet them like
# first-class code, then actually run the quickstart as a smoke test so the
# front-door experience can never silently rot.
go vet ./examples/...
go build -o /dev/null ./examples/...
go run ./examples/quickstart >/dev/null

go test ./...

SMOKE=$(mktemp -d)
COVER=$(mktemp)
trap 'rm -rf "$SMOKE"; rm -f "$COVER"' EXIT

# Serving-path smoke: boot astraea-serve (4 shards, race-built so the
# sharded hot path — pooled requests, write arenas, sweepers, hot reload —
# runs under the detector with real traffic), drive it with astraea-loadgen
# (which exits non-zero if any request fails hard — fallback answers are
# fine, unanswered requests are not), probe the saturation knee (non-zero
# throughput required), then SIGINT and require a clean drain. This
# exercises the real binaries and signal path, which the package tests
# cannot.
go build -race -o "$SMOKE/astraea-serve" ./cmd/astraea-serve
go build -o "$SMOKE/astraea-loadgen" ./cmd/astraea-loadgen
"$SMOKE/astraea-serve" -listen tcp:127.0.0.1:0 -policy reference -shards 4 \
    -addr-file "$SMOKE/addr" >"$SMOKE/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SMOKE/addr" ] && break; sleep 0.1; done
[ -s "$SMOKE/addr" ] || { echo "ci: astraea-serve never bound"; cat "$SMOKE/serve.log"; exit 1; }
"$SMOKE/astraea-loadgen" -addr "$(head -1 "$SMOKE/addr")" \
    -rate 2000 -duration 1s -flows -out "$SMOKE/load.json"
"$SMOKE/astraea-loadgen" -addr "$(head -1 "$SMOKE/addr")" \
    -knee -duration 300ms -outstanding 8 -flows -out "$SMOKE/knee.json"
kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "ci: astraea-serve drain was not clean"; cat "$SMOKE/serve.log"; exit 1; }
grep -q "drained after" "$SMOKE/serve.log" || { echo "ci: no drain line"; cat "$SMOKE/serve.log"; exit 1; }
if grep -q "RACE" "$SMOKE/serve.log"; then echo "ci: race detected in serve smoke"; cat "$SMOKE/serve.log"; exit 1; fi

# Deployment-artifact smoke: the full quantize→serve lifecycle through the
# real binaries — distill an actor, compile it with astraea-quantize, boot
# the race-built server on the blob (the quantized default path), drive it,
# and require a clean drain. Catches artifact-format or loader drift that
# package tests, which call the Go APIs directly, would miss.
go build -o "$SMOKE/astraea-train" ./cmd/astraea-train
go build -o "$SMOKE/astraea-quantize" ./cmd/astraea-quantize
"$SMOKE/astraea-train" -mode distill -samples 4000 -epochs 3 \
    -out "$SMOKE/actor.json" >/dev/null
# The trimmed distillation leaves a rougher actor than the documented
# default budget (which passes the tool's 0.02 default gate), so open the
# divergence gate here: this smoke tests the artifact lifecycle, and
# accuracy is gated by TestQuantizedClosedLoopEquivalence below.
"$SMOKE/astraea-quantize" -in "$SMOKE/actor.json" -out "$SMOKE/actor.aqp" -tol 0.1
"$SMOKE/astraea-serve" -listen tcp:127.0.0.1:0 -policy "$SMOKE/actor.aqp" -shards 2 \
    -addr-file "$SMOKE/qaddr" >"$SMOKE/qserve.log" 2>&1 &
QSERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SMOKE/qaddr" ] && break; sleep 0.1; done
[ -s "$SMOKE/qaddr" ] || { echo "ci: quantized astraea-serve never bound"; cat "$SMOKE/qserve.log"; exit 1; }
grep -q "serving quantized policy" "$SMOKE/qserve.log" || { echo "ci: blob did not serve quantized"; cat "$SMOKE/qserve.log"; exit 1; }
"$SMOKE/astraea-loadgen" -addr "$(head -1 "$SMOKE/qaddr")" \
    -rate 2000 -duration 1s -flows -out "$SMOKE/qload.json"
kill -INT "$QSERVE_PID"
wait "$QSERVE_PID" || { echo "ci: quantized serve drain was not clean"; cat "$SMOKE/qserve.log"; exit 1; }
if grep -q "RACE" "$SMOKE/qserve.log"; then echo "ci: race detected in quantized serve smoke"; cat "$SMOKE/qserve.log"; exit 1; fi

# Tournament smoke: the real binary on a trimmed grid (2 schemes × 2
# families, invariants checked). The report must rank both schemes and both
# artifacts must land under the output directory — a malformed table or a
# missing JSON report fails here, not in a user's hands.
go build -o "$SMOKE/astraea-tournament" ./cmd/astraea-tournament
"$SMOKE/astraea-tournament" -schemes cubic,reno -families incast,oscillating \
    -flows 4 -duration 1 -check -out "$SMOKE/tourney" >"$SMOKE/tourney.txt"
grep -Eq '^1 +(cubic|reno) ' "$SMOKE/tourney.txt" || { echo "ci: tournament table has no rank-1 row"; cat "$SMOKE/tourney.txt"; exit 1; }
grep -Eq '^2 +(cubic|reno) ' "$SMOKE/tourney.txt" || { echo "ci: tournament table has no rank-2 row"; cat "$SMOKE/tourney.txt"; exit 1; }
[ -s "$SMOKE/tourney/tournament.json" ] || { echo "ci: tournament.json missing"; exit 1; }
[ -s "$SMOKE/tourney/tournament.txt" ]  || { echo "ci: tournament.txt missing"; exit 1; }
grep -q '"ranking"' "$SMOKE/tourney/tournament.json" || { echo "ci: tournament.json has no ranking"; exit 1; }

# Fairness-lab smoke: the reward-strategy ablation binary on a tiny budget
# (2 strategies × 2 episodes), then the saved actor entered into a
# tournament — the full trained-under-strategy-X-competes-as-itself loop
# through the real binaries.
go build -o "$SMOKE/astraea-fairlab" ./cmd/astraea-fairlab
"$SMOKE/astraea-fairlab" -strategies paper,maxmin -episodes 2 \
    -out "$SMOKE/fairlab" -actors "$SMOKE/fairlab-actors" >"$SMOKE/fairlab.txt"
grep -Eq '^1 +(paper|maxmin) ' "$SMOKE/fairlab.txt" || { echo "ci: fairlab table has no rank-1 row"; cat "$SMOKE/fairlab.txt"; exit 1; }
grep -Eq '^2 +(paper|maxmin) ' "$SMOKE/fairlab.txt" || { echo "ci: fairlab table has no rank-2 row"; cat "$SMOKE/fairlab.txt"; exit 1; }
grep -q '"outcomes"' "$SMOKE/fairlab.json" || { echo "ci: fairlab.json has no outcomes"; exit 1; }
[ -s "$SMOKE/fairlab.txt" ] || { echo "ci: fairlab.txt missing"; exit 1; }
[ -s "$SMOKE/fairlab-actors/maxmin.json" ] || { echo "ci: fairlab saved no maxmin actor"; exit 1; }
"$SMOKE/astraea-tournament" -schemes cubic -families steady -flows 3 -duration 1 \
    -actors "lab-maxmin=$SMOKE/fairlab-actors/maxmin.json" -out "" >"$SMOKE/fairtourney.txt"
grep -Eq '^[12] +lab-maxmin ' "$SMOKE/fairtourney.txt" || { echo "ci: fairlab actor missing from tournament ranking"; cat "$SMOKE/fairtourney.txt"; exit 1; }

# Closed-loop pilot smoke: the full train → gate → promote → serve loop
# through the real binaries. A race-built astraea-serve watches a weights
# file; a race-built astraea-pilot trains a short round, gates the candidate
# against the serving incumbent, and promotes by atomically publishing the
# sealed generation artifact — confirmed via the daemon's own
# serve_policy_generation gauge — while astraea-loadgen hammers the fleet
# and must see zero failed requests and a monotonically advancing policy
# version. A second pilot run with an impossible gate floor must refuse its
# candidate and leave the serving file byte-identical.
go build -race -o "$SMOKE/astraea-pilot" ./cmd/astraea-pilot
cp "$SMOKE/actor.json" "$SMOKE/serving.policy"
"$SMOKE/astraea-serve" -listen tcp:127.0.0.1:0 -policy "$SMOKE/serving.policy" -shards 2 \
    -reload 50ms -telemetry 127.0.0.1:0 -addr-file "$SMOKE/paddr" >"$SMOKE/pserve.log" 2>&1 &
PSERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE/paddr" ] && grep -q "telemetry and pprof" "$SMOKE/pserve.log" && break; sleep 0.1
done
[ -s "$SMOKE/paddr" ] || { echo "ci: pilot's astraea-serve never bound"; cat "$SMOKE/pserve.log"; exit 1; }
PMETRICS=$(sed -n 's#.*telemetry and pprof on \(http://[^/]*\)/.*#\1/metrics#p' "$SMOKE/pserve.log" | head -1)
[ -n "$PMETRICS" ] || { echo "ci: no telemetry endpoint in serve log"; cat "$SMOKE/pserve.log"; exit 1; }
"$SMOKE/astraea-loadgen" -addr "$(head -1 "$SMOKE/paddr")" \
    -rate 500 -duration 12s -flows -out "$SMOKE/pload.json" >"$SMOKE/ploadgen.log" 2>&1 &
PLOAD_PID=$!
"$SMOKE/astraea-pilot" -promote "$SMOKE/serving.policy" -serve-metrics "$PMETRICS" \
    -dir "$SMOKE/gens" -rounds 1 -episodes-per-round 2 -workers 2 -rl-hidden 8,8 \
    -episode-duration 3 -max-flows 2 \
    -gate-families steady -gate-flows 3 -gate-duration 0.5 \
    -gate-util-floor 0.000001 -gate-jain-floor 0.000001 -gate-rtt-ceiling 1000000 \
    -probation 0.5 -health-interval 0.1 -health-min-requests 10 \
    -checkpoint "$SMOKE/pilot.ckpt" -checkpoint-every 1 \
    >"$SMOKE/pilot.log" 2>&1 || { echo "ci: pilot promotion run failed"; cat "$SMOKE/pilot.log"; exit 1; }
grep -q "promoted generation 2" "$SMOKE/pilot.log" || { echo "ci: pilot did not promote"; cat "$SMOKE/pilot.log"; exit 1; }
grep -q "serving generation 2" "$SMOKE/pilot.log" || { echo "ci: pilot did not confirm generation 2"; cat "$SMOKE/pilot.log"; exit 1; }
curl -s "$PMETRICS" | grep -q '^serve_policy_generation 2$' \
    || { echo "ci: fleet does not report generation 2"; curl -s "$PMETRICS" | grep serve_; exit 1; }
# Impossible floor: the candidate must be refused and the serving artifact
# must not move (byte-identical file, fleet still on generation 2).
cksum "$SMOKE/serving.policy" >"$SMOKE/serving.sum"
"$SMOKE/astraea-pilot" -promote "$SMOKE/serving.policy" -serve-metrics "$PMETRICS" \
    -dir "$SMOKE/gens" -rounds 1 -episodes-per-round 2 -workers 2 -rl-hidden 8,8 \
    -episode-duration 3 -max-flows 2 \
    -gate-families steady -gate-flows 3 -gate-duration 0.5 -gate-min-jain 1.5 \
    -probation 0.5 -health-interval 0.1 -health-min-requests 10 \
    >"$SMOKE/pilot2.log" 2>&1 || { echo "ci: pilot refusal run failed"; cat "$SMOKE/pilot2.log"; exit 1; }
grep -q "gate refused" "$SMOKE/pilot2.log" || { echo "ci: impossible floor not refused"; cat "$SMOKE/pilot2.log"; exit 1; }
cksum "$SMOKE/serving.policy" | cmp -s - "$SMOKE/serving.sum" \
    || { echo "ci: refused candidate moved the serving artifact"; exit 1; }
curl -s "$PMETRICS" | grep -q '^serve_policy_generation 2$' \
    || { echo "ci: fleet moved off generation 2 after a refusal"; exit 1; }
curl -s "$PMETRICS" | grep -q '^policy_reload_failures_total 0$' \
    || { echo "ci: reload failures during pilot smoke"; curl -s "$PMETRICS" | grep policy_; exit 1; }
wait "$PLOAD_PID" || { echo "ci: loadgen failed across promotion"; cat "$SMOKE/ploadgen.log"; exit 1; }
grep -q '"failed": 0' "$SMOKE/pload.json" || { echo "ci: dropped requests across promotion"; cat "$SMOKE/pload.json"; exit 1; }
grep -q '"max_version": 3' "$SMOKE/pload.json" || { echo "ci: clients never saw the promoted version"; cat "$SMOKE/pload.json"; exit 1; }
kill -INT "$PSERVE_PID"
wait "$PSERVE_PID" || { echo "ci: pilot's astraea-serve drain was not clean"; cat "$SMOKE/pserve.log"; exit 1; }
grep -q "drained after" "$SMOKE/pserve.log" || { echo "ci: no drain line after pilot smoke"; cat "$SMOKE/pserve.log"; exit 1; }
if grep -q "RACE" "$SMOKE/pserve.log" "$SMOKE/pilot.log" "$SMOKE/pilot2.log"; then
    echo "ci: race detected in pilot smoke"; exit 1
fi

# Coverage summary: per-package statement coverage plus the total, so a PR
# that guts a test file shows up as a number, not a feeling.
go test -coverprofile="$COVER" ./... >/dev/null
go tool cover -func="$COVER" | awk '
  /\.go:/ { split($1, p, "/"); pkg = p[1]"/"p[2]"/"p[3]; sub(/:.*/, "", pkg)
            cov[pkg] += $NF + 0; n[pkg]++ }
  /^total:/ { total = $NF }
  END { for (k in cov) printf "coverage %-28s %5.1f%%\n", k, cov[k]/n[k] | "sort"
        close("sort"); printf "coverage %-28s %s\n", "TOTAL", total }'

# Coverage floors on the packages owning the reward-strategy and
# training/checkpoint contracts: a PR that guts their tests fails with a
# number attached. Floors sit a few points under today's statement coverage
# (core 89.6%, env 91.2%) so organic drift passes and gutting does not.
awk '
  NR > 1 { n = split($1, p, "/"); pkg = p[1]
           for (i = 2; i < n; i++) pkg = pkg "/" p[i]
           stmts[pkg] += $2; if ($3 > 0) hit[pkg] += $2 }
  END {
    floor["repro/internal/core"] = 85
    floor["repro/internal/env"]  = 87
    bad = 0
    for (k in floor) {
      if (stmts[k] == 0) { printf "ci: no coverage data for %s\n", k; bad = 1; continue }
      pct = 100 * hit[k] / stmts[k]
      printf "coverage floor %-24s %5.1f%% (floor %d%%)\n", k, pct, floor[k]
      if (pct < floor[k]) { printf "ci: %s statement coverage below floor\n", k; bad = 1 }
    }
    exit bad
  }' "$COVER"

# Benchmark smoke pass: one iteration of every benchmark, so a bench that
# panics or trips its alloc regression check fails CI without paying for a
# full measurement run.
go test -run=NONE -bench=. -benchtime=1x ./...

# Fuzz smoke pass: a short budget per target catches shallow regressions in
# the parsers/decoders (the committed corpora under testdata/fuzz replay in
# plain `go test` runs above; this adds fresh mutation on top).
FUZZTIME=${FUZZTIME:-10s}
go test -fuzz=FuzzCkptDecode      -fuzztime="$FUZZTIME" -run=NONE ./internal/ckpt
go test -fuzz=FuzzCodecRead       -fuzztime="$FUZZTIME" -run=NONE ./internal/nn
go test -fuzz=FuzzQuantizedDecode -fuzztime="$FUZZTIME" -run=NONE ./internal/nn
go test -fuzz=FuzzTraceParse      -fuzztime="$FUZZTIME" -run=NONE ./internal/trace
go test -fuzz=FuzzLoadPolicy      -fuzztime="$FUZZTIME" -run=NONE ./internal/core

# The checkpoint/resume bitwise-determinism guarantee gets its own named
# race pass so a regression is attributable at a glance (the full-tree
# race run below also covers it, but buries the name).
go test -race -run TestResumeDeterminismBitwise ./internal/env
# Property-based invariant sweep under the race detector: 200+ seeded
# random scenarios with the internal/check invariant checker attached.
# Reproduce a failing seed with:
#   go test ./internal/check -run TestRandomScenarioInvariants -seed=N
go test -race -run TestRandomScenarioInvariants ./internal/check
# Reward-strategy property sweep, named: 220 seeded random worlds per
# strategy checking boundedness, permutation invariance, and the
# equal-shares preference every strategy must hold. Reproduce with -seed=N.
go test -race -run 'TestStrategyPropertySweep|TestStrategyEqualSharesPreferred|TestStrategyDegenerateInputsAreZero' ./internal/check
# The 500-flow incast under the full invariant checker, named: this is the
# scale workload the O(flows) fix pass targets, and the dirty-flow plumbing
# it relies on must also be clean under the detector.
go test -race -run 'TestIncast500FlowInvariants|TestIncrementalChecker' ./internal/check
# Quantized-equivalence sweep under the race detector, named so a fixed-
# point regression (divergent actions, moved fairness/throughput, or a
# kernel race) is attributable at a glance.
go test -race -run TestQuantizedClosedLoopEquivalence ./internal/check
# The closed-loop pilot's acceptance scenarios under the race detector,
# named: live promotion with monotonic versions and zero drops, gate
# refusal, and health-triggered automatic rollback.
go test -race -run 'TestPilot' ./internal/pilot
# The race pass needs a generous timeout: the experiment suite and the
# parallel learner run full simulations under the detector's ~10x slowdown.
go test -race -timeout 60m ./...
