#!/usr/bin/env bash
# Tier-1 gate: build, vet, tests, then the race detector over the full tree.
# The race pass is the slowest stage (the parallel learner trains real
# episodes under -race); keep it last so fast failures surface first.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
# Benchmark smoke pass: one iteration of every benchmark, so a bench that
# panics or trips its alloc regression check fails CI without paying for a
# full measurement run.
go test -run=NONE -bench=. -benchtime=1x ./...
# The checkpoint/resume bitwise-determinism guarantee gets its own named
# race pass so a regression is attributable at a glance (the full-tree
# race run below also covers it, but buries the name).
go test -race -run TestResumeDeterminismBitwise ./internal/env
# The race pass needs a generous timeout: the experiment suite and the
# parallel learner run full simulations under the detector's ~10x slowdown.
go test -race -timeout 60m ./...
