#!/usr/bin/env bash
# Serving benchmark: measure the sharded inference server end to end and
# persist the result as BENCH_serve.json in the repo root — the tracked
# trajectory for the paper's Fig. 16b claim (one shared service absorbing
# many senders).
#
# Default mode is the deployment-form comparison: distill a paper-sized
# actor (256/128/64), compile it with astraea-quantize, and run the
# saturation sweep twice over the same binary and machine — once serving
# the fixed-point blob (the deployment default), once serving the same
# weights as float64 (-float, the equivalence oracle). Each sweep steps
# closed-loop concurrency (doubling per-connection outstanding) until
# throughput stops improving and records the knee — the cheapest
# concurrency within 90% of max throughput — plus the full curve and
# environment provenance (GOMAXPROCS, CPU model, go version, commit,
# shard count). The two knee reports land side by side in $OUT as
# {"quantized": ..., "float": ...}; the throughput ratio is the serving-
# level payoff of the fixed-point path (DESIGN.md §12). Setting RATE
# switches to a fixed-rate open-loop run against the reference policy
# (the pre-sharding shape, with coordinated-omission-corrected latencies
# and the generator's worst scheduling lag).
#
# Tunables (env): SHARDS (default nproc), CONNS (default 8), DURATION
# (per-step in knee mode, default 3s), MAXOUT (max outstanding/conn tried,
# default 128), DEADLINE (default 20ms), QUEUE (per-shard queue depth,
# default 4096 so the sweep measures the evaluators, not admission), RATE
# (open-loop req/s; empty = knee sweep), OUT (default BENCH_serve.json).
set -euo pipefail
cd "$(dirname "$0")/.."

SHARDS=${SHARDS:-$(nproc)}
CONNS=${CONNS:-8}
DURATION=${DURATION:-3s}
MAXOUT=${MAXOUT:-128}
DEADLINE=${DEADLINE:-20ms}
QUEUE=${QUEUE:-4096}
RATE=${RATE:-}
OUT=${OUT:-BENCH_serve.json}
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo "")

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/astraea-serve" ./cmd/astraea-serve
go build -o "$WORK/astraea-loadgen" ./cmd/astraea-loadgen

# start_server <extra serve args...>: boot astraea-serve on an ephemeral
# port and wait for the address file.
start_server() {
    : >"$WORK/addr"
    "$WORK/astraea-serve" -listen tcp:127.0.0.1:0 \
        -shards "$SHARDS" -deadline "$DEADLINE" -queue-depth "$QUEUE" \
        -addr-file "$WORK/addr" "$@" >"$WORK/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do [ -s "$WORK/addr" ] && break; sleep 0.1; done
    [ -s "$WORK/addr" ] || { echo "bench-serve: server never bound"; cat "$WORK/serve.log"; exit 1; }
}

stop_server() {
    kill -INT "$SERVE_PID"
    wait "$SERVE_PID" || { echo "bench-serve: drain was not clean"; cat "$WORK/serve.log"; exit 1; }
    SERVE_PID=""
}

if [ -n "$RATE" ]; then
    start_server -policy reference
    "$WORK/astraea-loadgen" -addr "$(head -1 "$WORK/addr")" \
        -rate "$RATE" -duration "$DURATION" -conns "$CONNS" -flows -out "$OUT"
    stop_server
    echo "bench-serve: wrote $OUT"
    exit 0
fi

# Knee mode: same actor in both deployment forms. Training quality does not
# affect serving throughput (the network shape does), so the distillation
# budget is trimmed for turnaround.
go build -o "$WORK/astraea-train" ./cmd/astraea-train
go build -o "$WORK/astraea-quantize" ./cmd/astraea-quantize
"$WORK/astraea-train" -mode distill -samples 4000 -epochs 3 \
    -out "$WORK/actor.json" >/dev/null
# The trimmed distillation leaves a rougher actor than the documented
# default budget (which passes the tool's 0.02 default gate), so open the
# divergence gate: the sweep measures serving throughput, and accuracy is
# gated elsewhere (internal/check; DESIGN.md §12).
"$WORK/astraea-quantize" -in "$WORK/actor.json" -out "$WORK/actor.aqp" -tol 0.1

start_server -policy "$WORK/actor.aqp"
grep -q "serving quantized policy" "$WORK/serve.log" || { echo "bench-serve: blob did not serve quantized"; cat "$WORK/serve.log"; exit 1; }
"$WORK/astraea-loadgen" -addr "$(head -1 "$WORK/addr")" \
    -knee -duration "$DURATION" -conns "$CONNS" -outstanding "$MAXOUT" -flows \
    -commit "$COMMIT" -shards "$SHARDS" -out "$WORK/knee_quantized.json"
stop_server

start_server -policy "$WORK/actor.json" -float
"$WORK/astraea-loadgen" -addr "$(head -1 "$WORK/addr")" \
    -knee -duration "$DURATION" -conns "$CONNS" -outstanding "$MAXOUT" -flows \
    -commit "$COMMIT" -shards "$SHARDS" -out "$WORK/knee_float.json"
stop_server

jq -n --slurpfile q "$WORK/knee_quantized.json" --slurpfile f "$WORK/knee_float.json" \
    '{quantized: $q[0], float: $f[0]}' >"$OUT"
echo "bench-serve: wrote $OUT (quantized vs float knees)"
