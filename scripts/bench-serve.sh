#!/usr/bin/env bash
# Serving benchmark: measure the inference server end to end and persist the
# result as BENCH_serve.json in the repo root — the tracked trajectory for
# the paper's Fig. 16b claim (one shared service absorbing many senders).
#
# The JSON is the loadgen summary verbatim: target/achieved RPS, latency
# percentiles (p50/p90/p99/max ms), and the fallback/shed/deadline-miss
# counts and rate. A healthy run on a quiet machine shows fallback_rate 0
# and p99 a few ms (one batching window plus policy evaluation).
#
# Tunables (env): RATE (req/s, default 5000), DURATION (default 10s),
# CONNS (default 8), DEADLINE (default 20ms), OUT (default BENCH_serve.json).
set -euo pipefail
cd "$(dirname "$0")/.."

RATE=${RATE:-5000}
DURATION=${DURATION:-10s}
CONNS=${CONNS:-8}
DEADLINE=${DEADLINE:-20ms}
OUT=${OUT:-BENCH_serve.json}

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/astraea-serve" ./cmd/astraea-serve
go build -o "$WORK/astraea-loadgen" ./cmd/astraea-loadgen

"$WORK/astraea-serve" -listen tcp:127.0.0.1:0 -policy reference \
    -deadline "$DEADLINE" -addr-file "$WORK/addr" >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$WORK/addr" ] && break; sleep 0.1; done
[ -s "$WORK/addr" ] || { echo "bench-serve: server never bound"; cat "$WORK/serve.log"; exit 1; }

"$WORK/astraea-loadgen" -addr "$(head -1 "$WORK/addr")" \
    -rate "$RATE" -duration "$DURATION" -conns "$CONNS" -out "$OUT"

kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "bench-serve: drain was not clean"; cat "$WORK/serve.log"; exit 1; }
SERVE_PID=""
echo "bench-serve: wrote $OUT"
