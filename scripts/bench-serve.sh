#!/usr/bin/env bash
# Serving benchmark: measure the sharded inference server end to end and
# persist the result as BENCH_serve.json in the repo root — the tracked
# trajectory for the paper's Fig. 16b claim (one shared service absorbing
# many senders).
#
# Default mode is the saturation sweep: the loadgen steps closed-loop
# concurrency (doubling per-connection outstanding) until throughput stops
# improving and records the knee — the cheapest concurrency within 90% of
# max throughput — plus the full curve and environment provenance
# (GOMAXPROCS, CPU model, go version, commit, shard count), so two recorded
# numbers are comparable at a glance. Setting RATE switches to a fixed-rate
# open-loop run (the pre-sharding shape, with coordinated-omission-corrected
# latencies and the generator's worst scheduling lag).
#
# Tunables (env): SHARDS (default nproc), CONNS (default 8), DURATION
# (per-step in knee mode, default 3s), MAXOUT (max outstanding/conn tried,
# default 128), DEADLINE (default 20ms), QUEUE (per-shard queue depth,
# default 4096 so the sweep measures the evaluators, not admission), RATE
# (open-loop req/s; empty = knee sweep), OUT (default BENCH_serve.json).
set -euo pipefail
cd "$(dirname "$0")/.."

SHARDS=${SHARDS:-$(nproc)}
CONNS=${CONNS:-8}
DURATION=${DURATION:-3s}
MAXOUT=${MAXOUT:-128}
DEADLINE=${DEADLINE:-20ms}
QUEUE=${QUEUE:-4096}
RATE=${RATE:-}
OUT=${OUT:-BENCH_serve.json}
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo "")

WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/astraea-serve" ./cmd/astraea-serve
go build -o "$WORK/astraea-loadgen" ./cmd/astraea-loadgen

"$WORK/astraea-serve" -listen tcp:127.0.0.1:0 -policy reference \
    -shards "$SHARDS" -deadline "$DEADLINE" -queue-depth "$QUEUE" \
    -addr-file "$WORK/addr" >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$WORK/addr" ] && break; sleep 0.1; done
[ -s "$WORK/addr" ] || { echo "bench-serve: server never bound"; cat "$WORK/serve.log"; exit 1; }

if [ -n "$RATE" ]; then
    "$WORK/astraea-loadgen" -addr "$(head -1 "$WORK/addr")" \
        -rate "$RATE" -duration "$DURATION" -conns "$CONNS" -flows -out "$OUT"
else
    "$WORK/astraea-loadgen" -addr "$(head -1 "$WORK/addr")" \
        -knee -duration "$DURATION" -conns "$CONNS" -outstanding "$MAXOUT" -flows \
        -commit "$COMMIT" -shards "$SHARDS" -out "$OUT"
fi

kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { echo "bench-serve: drain was not clean"; cat "$WORK/serve.log"; exit 1; }
SERVE_PID=""
echo "bench-serve: wrote $OUT"
